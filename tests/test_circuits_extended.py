"""Tests for the extended circuit generators: carry-select adders, PLAs,
gate-level muxes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Cube,
    Gates,
    PLASpec,
    adder_assignments,
    adder_input_names,
    adder_result,
    carry_select_adder,
    pla,
    ripple_carry_adder,
    seven_segment_spec,
)
from repro.core.timing import TimingAnalyzer
from repro.errors import NetlistError
from repro.netlist import Network, validate_network
from repro.switchlevel import Logic, SwitchSimulator, exhaustive_truth_table
from repro.tech import CMOS3, NMOS4


class TestGateMux:
    @pytest.mark.parametrize("tech", [CMOS3, NMOS4], ids=["cmos", "nmos"])
    def test_truth_table(self, tech):
        net = Network(tech)
        Gates(net).gate_mux2("sel", "a", "b", "y")
        net.mark_input("sel", "a", "b")
        rows = exhaustive_truth_table(net, ["sel", "a", "b"], ["y"])
        for (sel, a, b), outs in rows:
            expected = a if sel else b
            assert outs["y"] is Logic.from_bool(bool(expected)), (sel, a, b)


class TestCarrySelectAdder:
    def test_validation(self):
        with pytest.raises(NetlistError):
            carry_select_adder(CMOS3, 0)
        with pytest.raises(NetlistError):
            carry_select_adder(CMOS3, 8, block=0)

    def test_ports_match_ripple(self):
        csa = carry_select_adder(CMOS3, 6, block=2)
        for name in adder_input_names(6):
            assert csa.has_node(name)
        for bit in range(6):
            assert csa.has_node(f"s{bit}")
        assert csa.has_node("cout")

    def test_validates_clean(self):
        errors = [d for d in validate_network(
            carry_select_adder(CMOS3, 4, block=2))
            if d.severity.value == "error"]
        assert errors == []

    @settings(max_examples=12, deadline=None)
    @given(a=st.integers(0, 63), b=st.integers(0, 63), cin=st.integers(0, 1))
    def test_functional_random(self, a, b, cin):
        net = carry_select_adder(CMOS3, 6, block=2)
        sim = SwitchSimulator(net)
        values = sim.run(**adder_assignments(6, a, b, cin))
        assert adder_result(values, 6) == a + b + cin

    def test_odd_tail_block(self):
        """Width not divisible by the block size still adds correctly."""
        net = carry_select_adder(CMOS3, 5, block=3)
        sim = SwitchSimulator(net)
        values = sim.run(**adder_assignments(5, 21, 9, 1))
        assert adder_result(values, 5) == 31

    def test_faster_than_ripple_at_width(self):
        """The architectural point: shorter critical path, more devices."""
        bits = 16
        inputs = {n: 0.0 for n in adder_input_names(bits)}
        outputs = [f"s{bits - 1}", "cout"]
        ripple = ripple_carry_adder(CMOS3, bits)
        select = carry_select_adder(CMOS3, bits, block=4)
        t_ripple = TimingAnalyzer(ripple).analyze(inputs).worst(
            outputs)[1].time
        t_select = TimingAnalyzer(select).analyze(inputs).worst(
            outputs)[1].time
        assert t_select < t_ripple
        assert len(select.transistors) > len(ripple.transistors)


class TestPLASpec:
    def test_validation_catches_bad_literal(self):
        spec = PLASpec(num_inputs=2,
                       cubes=[Cube.from_dict({5: True})],
                       outputs=[(0,)])
        with pytest.raises(NetlistError):
            spec.validate()

    def test_validation_catches_bad_output(self):
        spec = PLASpec(num_inputs=2,
                       cubes=[Cube.from_dict({0: True})],
                       outputs=[(3,)])
        with pytest.raises(NetlistError):
            spec.validate()

    def test_needs_cubes_and_outputs(self):
        with pytest.raises(NetlistError):
            PLASpec(num_inputs=1, cubes=[], outputs=[(0,)]).validate()

    def test_cube_evaluation(self):
        cube = Cube.from_dict({0: True, 2: False})
        assert cube.evaluate([1, 0, 0])
        assert cube.evaluate([1, 1, 0])  # input 1 is don't-care
        assert not cube.evaluate([0, 0, 0])
        assert not cube.evaluate([1, 0, 1])

    def test_from_truth_table(self):
        spec = PLASpec.from_truth_table(2, {0: [0], 3: [0, 1]})
        assert spec.evaluate([0, 0]) == [True, False]
        assert spec.evaluate([1, 1]) == [True, True]
        assert spec.evaluate([1, 0]) == [False, False]

    def test_minterm_range_checked(self):
        with pytest.raises(NetlistError):
            PLASpec.from_truth_table(2, {4: [0]})


class TestPLAHardware:
    @pytest.mark.parametrize("tech", [CMOS3, NMOS4], ids=["cmos", "nmos"])
    def test_xor_pla_matches_spec(self, tech):
        spec = PLASpec.from_truth_table(2, {1: [0], 2: [0]})  # XOR
        net = pla(tech, spec)
        sim = SwitchSimulator(net)
        for pattern in range(4):
            bits = [(pattern >> i) & 1 for i in range(2)]
            values = sim.run(i0=bits[0], i1=bits[1])
            expected = spec.evaluate(bits)[0]
            assert values["o0"] is Logic.from_bool(expected), bits

    def test_dont_care_cube(self):
        # f = i0 (i1 is a don't-care): one single-literal product.
        spec = PLASpec(num_inputs=2,
                       cubes=[Cube.from_dict({0: True})],
                       outputs=[(0,)])
        net = pla(CMOS3, spec)
        sim = SwitchSimulator(net)
        assert sim.run(i0=1, i1=0)["o0"] is Logic.ONE
        assert sim.run(i0=0, i1=1)["o0"] is Logic.ZERO

    def test_seven_segment_digit_patterns(self):
        spec = seven_segment_spec()
        net = pla(CMOS3, spec)
        sim = SwitchSimulator(net)
        # Digit 1 lights exactly segments b and c (outputs 1 and 2).
        bits = {f"i{k}": (1 >> k) & 1 for k in range(4)}
        values = sim.run(**bits)
        lit = [k for k in range(7) if values[f"o{k}"] is Logic.ONE]
        assert lit == [1, 2]
        # Digit 8 lights everything.
        bits = {f"i{k}": (8 >> k) & 1 for k in range(4)}
        values = sim.run(**bits)
        assert all(values[f"o{k}"] is Logic.ONE for k in range(7))

    def test_pla_validates_clean(self):
        net = pla(NMOS4, seven_segment_spec())
        errors = [d for d in validate_network(net)
                  if d.severity.value == "error"]
        assert errors == []

    def test_pla_timing_analyzes(self):
        net = pla(CMOS3, seven_segment_spec())
        result = TimingAnalyzer(net).analyze(
            {f"i{k}": 0.0 for k in range(4)})
        worst = result.worst([f"o{k}" for k in range(7)])[1]
        assert worst.time > 0
