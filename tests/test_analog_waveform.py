"""Tests for waveforms and measurements."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analog import Waveform, delay_between, ramp_waveform, sample_uniform
from repro.errors import MeasurementError
from repro.tech import Transition


def ramp(t0=1.0, duration=2.0, lo=0.0, hi=5.0, t_stop=10.0):
    return ramp_waveform(t0, duration, lo, hi, t_stop)


class TestConstruction:
    def test_requires_equal_lengths(self):
        with pytest.raises(MeasurementError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_requires_two_samples(self):
        with pytest.raises(MeasurementError):
            Waveform(np.array([0.0]), np.array([1.0]))

    def test_requires_increasing_times(self):
        with pytest.raises(MeasurementError):
            Waveform(np.array([0.0, 0.0]), np.array([1.0, 2.0]))

    def test_sample_uniform_accepts_lists(self):
        wf = sample_uniform([0, 1, 2], [0, 5, 5])
        assert wf.value_at(0.5) == pytest.approx(2.5)


class TestBasicAccess:
    def test_value_interpolates(self):
        wf = ramp()
        assert wf.value_at(2.0) == pytest.approx(2.5)

    def test_value_clamps_outside(self):
        wf = ramp()
        assert wf.value_at(-5.0) == pytest.approx(0.0)
        assert wf.value_at(50.0) == pytest.approx(5.0)

    def test_initial_final(self):
        wf = ramp()
        assert wf.initial_value() == 0.0
        assert wf.final_value() == 5.0

    def test_window(self):
        wf = ramp()
        cut = wf.window(1.5, 2.5)
        assert cut.t_start == pytest.approx(1.5)
        assert cut.initial_value() == pytest.approx(1.25)

    def test_window_bounds_checked(self):
        with pytest.raises(MeasurementError):
            ramp().window(-1.0, 2.0)

    def test_settles_to(self):
        assert ramp().settles_to(5.0, 0.01)
        assert not ramp().settles_to(0.0, 0.01)


class TestCrossings:
    def test_single_rising_crossing(self):
        wf = ramp()
        times = wf.crossings(2.5, Transition.RISE)
        assert times == [pytest.approx(2.0)]

    def test_direction_filter(self):
        wf = ramp()
        assert wf.crossings(2.5, Transition.FALL) == []

    def test_pulse_has_both(self):
        wf = sample_uniform([0, 1, 2, 3, 4], [0, 5, 5, 0, 0])
        assert len(wf.crossings(2.5, Transition.RISE)) == 1
        assert len(wf.crossings(2.5, Transition.FALL)) == 1
        assert len(wf.crossings(2.5)) == 2

    def test_first_crossing_after(self):
        wf = sample_uniform([0, 1, 2, 3, 4, 5], [0, 5, 0, 5, 5, 5])
        assert wf.first_crossing(2.5, Transition.RISE) == pytest.approx(0.5)
        assert wf.first_crossing(2.5, Transition.RISE,
                                 after=1.5) == pytest.approx(2.5)

    def test_first_crossing_missing_raises(self):
        with pytest.raises(MeasurementError):
            ramp().first_crossing(2.5, Transition.FALL)

    def test_last_crossing(self):
        wf = sample_uniform([0, 1, 2, 3], [0, 5, 0, 5])
        assert wf.last_crossing(2.5, Transition.RISE) == pytest.approx(2.5)

    def test_last_crossing_missing_raises(self):
        with pytest.raises(MeasurementError):
            ramp().last_crossing(6.0)

    @given(st.floats(min_value=0.2, max_value=4.8))
    def test_crossing_matches_interpolation(self, threshold):
        wf = ramp()
        t = wf.first_crossing(threshold, Transition.RISE)
        assert wf.value_at(t) == pytest.approx(threshold, abs=1e-9)


class TestTransitionTime:
    def test_perfect_ramp_reports_duration(self):
        wf = ramp(duration=2.0)
        tt = wf.transition_time(0.0, 5.0, Transition.RISE)
        assert tt == pytest.approx(2.0)

    def test_falling_edge(self):
        wf = sample_uniform([0, 1, 3, 10], [5, 5, 0, 0])
        tt = wf.transition_time(0.0, 5.0, Transition.FALL)
        assert tt == pytest.approx(2.0)

    def test_fraction_rescaling(self):
        """Different measurement fractions agree on a linear edge."""
        wf = ramp(duration=4.0)
        a = wf.transition_time(0.0, 5.0, Transition.RISE,
                               low_frac=0.1, high_frac=0.9)
        b = wf.transition_time(0.0, 5.0, Transition.RISE,
                               low_frac=0.2, high_frac=0.8)
        assert a == pytest.approx(b)

    def test_exponential_settle(self):
        """An RC exponential's 10-90 full-swing time is ln(9)/0.8 tau."""
        t = np.linspace(0, 10, 4000)
        wf = Waveform(t, 5.0 * (1 - np.exp(-t)))
        tt = wf.transition_time(0.0, 5.0, Transition.RISE)
        assert tt == pytest.approx(np.log(9) / 0.8, rel=1e-2)

    def test_invalid_swing(self):
        with pytest.raises(MeasurementError):
            ramp().transition_time(5.0, 0.0, Transition.RISE)


class TestDelayBetween:
    def test_simple_inverter_delay(self):
        vin = ramp(t0=1.0, duration=1.0)
        vout = sample_uniform([0, 2, 3, 10], [5, 5, 0, 0])
        d = delay_between(vin, vout, 5.0, Transition.RISE, Transition.FALL)
        # in crosses 2.5 at t=1.5; out crosses 2.5 at t=2.5.
        assert d == pytest.approx(1.0)

    def test_negative_delay_found(self):
        """Slow input, early output: the output switches before the input
        midpoint — the measurement must not miss it."""
        vin = ramp(t0=0.0, duration=8.0, t_stop=20.0)  # crosses 2.5 at t=4
        vout = sample_uniform([0, 2, 3, 20], [5, 5, 0, 0])  # falls at 2.5
        d = delay_between(vin, vout, 5.0, Transition.RISE, Transition.FALL)
        assert d < 0

    def test_missing_output_edge_raises(self):
        vin = ramp()
        vout = sample_uniform([0, 10], [0, 0])
        with pytest.raises(MeasurementError):
            delay_between(vin, vout, 5.0, Transition.RISE, Transition.RISE)


class TestRampWaveform:
    def test_zero_duration_is_step(self):
        wf = ramp_waveform(1.0, 0.0, 0.0, 5.0, 10.0)
        assert wf.value_at(0.99) == pytest.approx(0.0)
        assert wf.value_at(1.01) == pytest.approx(5.0)

    def test_start_at_zero(self):
        wf = ramp_waveform(0.0, 1.0, 0.0, 5.0, 10.0)
        assert wf.t_start == 0.0
