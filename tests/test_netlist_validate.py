"""Tests for netlist validation diagnostics."""

import pytest

from repro.circuits import inverter_chain
from repro.errors import ValidationError
from repro.netlist import Network, Severity, validate_network, validate_strict
from repro.tech import CMOS3, NMOS4, DeviceKind


def codes(findings):
    return {f.code for f in findings}


class TestCleanNetworks:
    def test_inverter_chain_clean(self):
        net = inverter_chain(CMOS3, 3)
        assert validate_network(net) == []

    def test_strict_passes_clean(self):
        validate_strict(inverter_chain(NMOS4, 2))


class TestFloatingGate:
    def test_detected(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "floatg", "gnd", "y")
        findings = validate_network(net)
        assert "floating-gate" in codes(findings)

    def test_input_gate_ok(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        net.mark_input("a")
        assert "floating-gate" not in codes(validate_network(net))

    def test_stage_driven_gate_ok(self):
        net = inverter_chain(CMOS3, 2)
        assert "floating-gate" not in codes(validate_network(net))

    def test_strict_raises(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "floatg", "gnd", "y")
        with pytest.raises(ValidationError):
            validate_strict(net)


class TestSupplyShort:
    def test_depletion_chain_short(self):
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_DEP, "x", "x", "vdd")
        net.add_resistor("x", "gnd", 1e3)
        assert "supply-short" in codes(validate_network(net))

    def test_resistor_divider_short(self):
        net = Network(CMOS3)
        net.add_resistor("vdd", "mid", 1e3)
        net.add_resistor("mid", "gnd", 1e3)
        assert "supply-short" in codes(validate_network(net))

    def test_gated_path_not_a_short(self):
        """A normal inverter bridges the rails only when gated — fine."""
        net = inverter_chain(NMOS4, 1)
        assert "supply-short" not in codes(validate_network(net))


class TestWarnings:
    def test_undriven_stage(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "g", "x", "y")
        net.mark_input("g")
        findings = validate_network(net)
        assert "undriven-stage" in codes(findings)
        finding = next(f for f in findings if f.code == "undriven-stage")
        assert finding.severity is Severity.WARNING

    def test_depletion_switch_warning(self):
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_DEP, "clk", "a", "b")
        net.mark_input("clk", "a", "b")
        assert "depletion-switch" in codes(validate_network(net))

    def test_isolated_node_warning(self):
        net = Network(CMOS3)
        net.add_node("orphan")
        assert "isolated-node" in codes(validate_network(net))

    def test_isolated_node_with_cap_ok(self):
        net = Network(CMOS3)
        net.add_node("wire", capacitance=1e-15)
        assert "isolated-node" not in codes(validate_network(net))

    def test_warnings_do_not_fail_strict(self):
        net = Network(CMOS3)
        net.add_node("orphan")
        validate_strict(net)  # warnings only


class TestOrdering:
    def test_errors_sorted_first(self):
        net = Network(NMOS4)
        net.add_node("orphan")  # warning
        net.add_transistor(DeviceKind.NMOS_ENH, "floatg", "gnd", "y")  # error
        findings = validate_network(net)
        assert findings[0].severity is Severity.ERROR

    def test_diagnostic_str(self):
        net = Network(CMOS3)
        net.add_node("orphan")
        text = str(validate_network(net)[0])
        assert "isolated-node" in text and "warning" in text
