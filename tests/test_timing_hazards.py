"""Tests for charge-sharing hazard detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Gates, inverter_chain
from repro.core.timing import (
    find_charge_sharing_hazards,
    format_hazard_report,
)
from repro.netlist import Network
from repro.switchlevel import Logic
from repro.tech import CMOS3, NMOS4, DeviceKind


def storage_vs_bus(tech, storage_cap=10e-15, bus_cap=100e-15):
    """A small storage node connected to a big floating bus through a
    gated pass device — the canonical charge-sharing victim."""
    net = Network(tech)
    gates = Gates(net)
    net.add_node("store", capacitance=storage_cap)
    net.add_node("bigbus", capacitance=bus_cap)
    gates.pass_nmos("sel", "store", "bigbus")
    # Keep both sides writable so they are legitimate storage nodes.
    gates.pass_nmos("wr", "din", "store")
    gates.pass_nmos("pre", "drv", "bigbus")
    net.mark_input("sel", "wr", "pre", "din", "drv")
    return net


class TestDetection:
    def test_hazard_found(self):
        net = storage_vs_bus(CMOS3)
        # With wr/pre off, both sides are isolated charge.
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        hazards = find_charge_sharing_hazards(net, states)
        victims = {h.storage_node for h in hazards}
        assert "store" in victims
        hazard = next(h for h in hazards if h.storage_node == "store")
        assert hazard.surviving_fraction < 0.2  # 10fF vs >100fF
        assert hazard.severity > 0.8

    def test_driven_far_side_not_a_hazard(self):
        net = storage_vs_bus(CMOS3)
        # pre on: the bus side reaches the driven node 'drv' -> restoring.
        states = {"wr": Logic.ZERO, "pre": Logic.ONE}
        hazards = find_charge_sharing_hazards(net, states)
        assert all(h.storage_node != "store" for h in hazards)

    def test_small_exposure_below_threshold(self):
        net = storage_vs_bus(CMOS3, storage_cap=100e-15, bus_cap=10e-15)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        hazards = find_charge_sharing_hazards(net, states, threshold=0.25)
        assert all(h.storage_node != "store" for h in hazards)

    def test_threshold_tunable(self):
        net = storage_vs_bus(CMOS3, storage_cap=100e-15, bus_cap=20e-15)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        strict = find_charge_sharing_hazards(net, states, threshold=0.05)
        assert any(h.storage_node == "store" for h in strict)

    def test_static_logic_clean(self):
        """Plain inverter chains have no charge-sharing exposures."""
        net = inverter_chain(CMOS3, 4)
        assert find_charge_sharing_hazards(net) == []

    def test_depletion_devices_ignored(self):
        net = Network(NMOS4)
        gates = Gates(net)
        gates.inverter("a", "y")
        net.mark_input("a")
        assert find_charge_sharing_hazards(net) == []

    def test_device_bridging_driven_node_skipped(self):
        """A pass device straight off a primary input restores, never
        shares."""
        net = Network(CMOS3)
        gates = Gates(net)
        gates.pass_nmos("sel", "din", "store")
        net.add_node("store", capacitance=5e-15)
        net.mark_input("sel", "din")
        assert find_charge_sharing_hazards(net) == []


class TestSeverityMath:
    def test_surviving_fraction_is_cap_divider(self):
        net = storage_vs_bus(CMOS3, storage_cap=30e-15, bus_cap=60e-15)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        hazards = find_charge_sharing_hazards(net, states, threshold=0.1)
        hazard = next(h for h in hazards if h.storage_node == "store")
        # Device diffusion caps add a little on both sides; the ratio is
        # near 30/(30+60).
        assert hazard.surviving_fraction == pytest.approx(30 / 90, abs=0.08)

    def test_sorted_worst_first(self):
        net = storage_vs_bus(CMOS3)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        hazards = find_charge_sharing_hazards(net, states, threshold=0.05)
        severities = [h.severity for h in hazards]
        assert severities == sorted(severities, reverse=True)


class TestReport:
    def test_empty_report(self):
        assert "no hazards" in format_hazard_report([])

    def test_report_lists_nodes(self):
        net = storage_vs_bus(CMOS3)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        hazards = find_charge_sharing_hazards(net, states)
        text = format_hazard_report(hazards)
        assert "store" in text and "fF" in text


class TestHazardUnits:
    """Direct unit coverage of the hazard dataclass and dedup logic."""

    def test_severity_complements_survival(self):
        from repro.core.timing.hazards import ChargeSharingHazard
        hazard = ChargeSharingHazard(
            storage_node="s", device="m1", storage_cap=10e-15,
            exposed_cap=40e-15, surviving_fraction=0.2)
        assert hazard.severity == pytest.approx(0.8)
        assert "m1" in str(hazard) and "20%" in str(hazard)

    def test_duplicate_storage_device_pairs_deduplicated(self):
        net = storage_vs_bus(CMOS3)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        hazards = find_charge_sharing_hazards(net, states, threshold=0.01)
        keys = [(h.storage_node, h.device) for h in hazards]
        assert len(keys) == len(set(keys))

    def test_threshold_filters_monotonically(self):
        # Raising the threshold can only remove hazards, never add them.
        net = storage_vs_bus(CMOS3)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        loose = find_charge_sharing_hazards(net, states, threshold=0.0)
        strict = find_charge_sharing_hazards(net, states, threshold=0.9)
        assert set(strict) <= set(loose)
        assert all(h.severity >= 0.9 for h in strict)


class TestParallelDifferential:
    """Hazard results must not change when the parallel executor runs."""

    def test_scan_unchanged_after_parallel_analyze(self):
        from repro.parallel import ParallelConfig, parallel_analyze
        net = storage_vs_bus(CMOS3)
        states = {"wr": Logic.ZERO, "pre": Logic.ZERO}
        before = find_charge_sharing_hazards(net, states)
        inputs = {n.name: 0.0 for n in net.inputs()}
        result = parallel_analyze(
            net, inputs, jobs=2, config=ParallelConfig(jobs=2, min_front=1))
        assert result.arrivals  # the run actually analyzed something
        after = find_charge_sharing_hazards(net, states)
        assert before == after

    @given(
        storage=st.floats(min_value=1e-15, max_value=200e-15),
        bus=st.floats(min_value=1e-15, max_value=200e-15),
        wr=st.sampled_from([Logic.ZERO, Logic.ONE, Logic.X]),
        pre=st.sampled_from([Logic.ZERO, Logic.ONE, Logic.X]),
    )
    @settings(max_examples=20, deadline=None)
    def test_scan_is_deterministic(self, storage, bus, wr, pre):
        net = storage_vs_bus(CMOS3, storage_cap=storage, bus_cap=bus)
        states = {"wr": wr, "pre": pre}
        first = find_charge_sharing_hazards(net, states)
        second = find_charge_sharing_hazards(net, states)
        assert first == second
        for hazard in first:
            assert 0.0 <= hazard.surviving_fraction <= 1.0
