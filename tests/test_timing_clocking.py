"""Tests for clocked timing analysis: schedules, setup checks, min period."""

import pytest

from repro.circuits import Gates, shift_register
from repro.core.timing import (
    ClockPhase,
    ClockSchedule,
    InputSpec,
    analyze_clocked,
    format_setup_report,
    minimum_period,
)
from repro.errors import TimingError
from repro.netlist import Network
from repro.tech import CMOS3, NMOS4


class TestSchedule:
    def test_phase_validation(self):
        with pytest.raises(TimingError):
            ClockPhase("p", 2.0, 1.0)
        with pytest.raises(TimingError):
            ClockPhase("p", -1.0, 1.0)

    def test_phase_width(self):
        assert ClockPhase("p", 1e-9, 4e-9).width == pytest.approx(3e-9)

    def test_period_validation(self):
        with pytest.raises(TimingError):
            ClockSchedule(period=0.0)

    def test_phase_must_fit_period(self):
        with pytest.raises(TimingError):
            ClockSchedule(period=1e-9,
                          phases={"p": ClockPhase("p", 0.0, 2e-9)})

    def test_two_phase_layout(self):
        schedule = ClockSchedule.two_phase(20e-9, separation=1e-9)
        phi1, phi2 = schedule.phase("phi1"), schedule.phase("phi2")
        assert phi1.fall <= phi2.rise  # non-overlapping
        assert phi2.fall <= schedule.period

    def test_two_phase_separation_validation(self):
        with pytest.raises(TimingError):
            ClockSchedule.two_phase(10e-9, separation=6e-9)

    def test_unknown_phase(self):
        schedule = ClockSchedule.two_phase(20e-9)
        with pytest.raises(TimingError):
            schedule.phase("phi3")


def half_stage(tech):
    """A clocked pass device into an inverter: the unit of two-phase
    dynamic logic."""
    net = Network(tech)
    gates = Gates(net)
    gates.pass_nmos("phi", "din", "store")
    gates.inverter("store", "q")
    net.mark_input("din", "phi")
    return net


class TestAnalyzeClocked:
    def test_setup_check_produced(self):
        net = half_stage(CMOS3)
        schedule = ClockSchedule(
            period=20e-9,
            phases={"phi1": ClockPhase("phi1", 0.0, 10e-9)})
        clocked = analyze_clocked(
            net,
            data_inputs={"din": InputSpec(arrival_rise=1e-9,
                                          arrival_fall=1e-9)},
            clocks={"phi": "phi1"},
            schedule=schedule)
        stores = [c for c in clocked.checks if c.storage_node == "store"]
        assert stores
        check = stores[0]
        assert check.phase == "phi1"
        assert check.required == pytest.approx(10e-9)
        assert check.ok

    def test_late_data_violates(self):
        net = half_stage(CMOS3)
        schedule = ClockSchedule(
            period=20e-9,
            phases={"phi1": ClockPhase("phi1", 0.0, 1e-9)})  # tiny window
        clocked = analyze_clocked(
            net,
            data_inputs={"din": InputSpec(arrival_rise=5e-9,
                                          arrival_fall=5e-9)},
            clocks={"phi": "phi1"},
            schedule=schedule)
        assert clocked.violations
        assert clocked.worst_slack() < 0

    def test_shift_register_two_phase(self):
        net = shift_register(CMOS3, stages=2)
        schedule = ClockSchedule.two_phase(40e-9, separation=2e-9)
        clocked = analyze_clocked(
            net,
            data_inputs={"din": InputSpec(arrival_rise=0.0,
                                          arrival_fall=0.0)},
            clocks={"phi1": "phi1", "phi2": "phi2"},
            schedule=schedule)
        # Every clocked storage node got a check; a generous period passes.
        assert len(clocked.checks) >= 4
        assert clocked.worst_slack() is not None

    def test_report_renders(self):
        net = half_stage(CMOS3)
        schedule = ClockSchedule(
            period=20e-9, phases={"phi1": ClockPhase("phi1", 0.0, 10e-9)})
        clocked = analyze_clocked(
            net, data_inputs={"din": 0.0}, clocks={"phi": "phi1"},
            schedule=schedule)
        text = format_setup_report(clocked)
        assert "setup checks" in text and "worst slack" in text

    def test_nmos_works_too(self):
        net = half_stage(NMOS4)
        schedule = ClockSchedule(
            period=100e-9, phases={"phi1": ClockPhase("phi1", 0.0, 50e-9)})
        clocked = analyze_clocked(
            net, data_inputs={"din": 0.0}, clocks={"phi": "phi1"},
            schedule=schedule)
        assert clocked.worst_slack() is not None


class TestMinimumPeriod:
    def test_min_period_brackets_behaviour(self):
        net = half_stage(CMOS3)
        template = ClockSchedule(
            period=40e-9, phases={"phi1": ClockPhase("phi1", 0.0, 20e-9)})
        period = minimum_period(
            net, data_inputs={"din": 0.0}, clocks={"phi": "phi1"},
            template=template)
        assert 0 < period < 40e-9
        # The returned period passes; 1/4 of it fails.
        scale = period / template.period
        passing = ClockSchedule(
            period=period,
            phases={"phi1": ClockPhase("phi1", 0.0, 20e-9 * scale)})
        clocked = analyze_clocked(net, {"din": 0.0}, {"phi": "phi1"},
                                  passing)
        assert not clocked.violations
