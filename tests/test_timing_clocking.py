"""Tests for clocked timing analysis: schedules, setup checks, min period."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Gates, shift_register
from repro.core.timing import (
    ClockPhase,
    ClockSchedule,
    InputSpec,
    analyze_clocked,
    format_setup_report,
    minimum_period,
)
from repro.errors import TimingError
from repro.netlist import Network
from repro.tech import CMOS3, NMOS4


class TestSchedule:
    def test_phase_validation(self):
        with pytest.raises(TimingError):
            ClockPhase("p", 2.0, 1.0)
        with pytest.raises(TimingError):
            ClockPhase("p", -1.0, 1.0)

    def test_phase_width(self):
        assert ClockPhase("p", 1e-9, 4e-9).width == pytest.approx(3e-9)

    def test_period_validation(self):
        with pytest.raises(TimingError):
            ClockSchedule(period=0.0)

    def test_phase_must_fit_period(self):
        with pytest.raises(TimingError):
            ClockSchedule(period=1e-9,
                          phases={"p": ClockPhase("p", 0.0, 2e-9)})

    def test_two_phase_layout(self):
        schedule = ClockSchedule.two_phase(20e-9, separation=1e-9)
        phi1, phi2 = schedule.phase("phi1"), schedule.phase("phi2")
        assert phi1.fall <= phi2.rise  # non-overlapping
        assert phi2.fall <= schedule.period

    def test_two_phase_separation_validation(self):
        with pytest.raises(TimingError):
            ClockSchedule.two_phase(10e-9, separation=6e-9)

    def test_unknown_phase(self):
        schedule = ClockSchedule.two_phase(20e-9)
        with pytest.raises(TimingError):
            schedule.phase("phi3")


def half_stage(tech):
    """A clocked pass device into an inverter: the unit of two-phase
    dynamic logic."""
    net = Network(tech)
    gates = Gates(net)
    gates.pass_nmos("phi", "din", "store")
    gates.inverter("store", "q")
    net.mark_input("din", "phi")
    return net


class TestAnalyzeClocked:
    def test_setup_check_produced(self):
        net = half_stage(CMOS3)
        schedule = ClockSchedule(
            period=20e-9,
            phases={"phi1": ClockPhase("phi1", 0.0, 10e-9)})
        clocked = analyze_clocked(
            net,
            data_inputs={"din": InputSpec(arrival_rise=1e-9,
                                          arrival_fall=1e-9)},
            clocks={"phi": "phi1"},
            schedule=schedule)
        stores = [c for c in clocked.checks if c.storage_node == "store"]
        assert stores
        check = stores[0]
        assert check.phase == "phi1"
        assert check.required == pytest.approx(10e-9)
        assert check.ok

    def test_late_data_violates(self):
        net = half_stage(CMOS3)
        schedule = ClockSchedule(
            period=20e-9,
            phases={"phi1": ClockPhase("phi1", 0.0, 1e-9)})  # tiny window
        clocked = analyze_clocked(
            net,
            data_inputs={"din": InputSpec(arrival_rise=5e-9,
                                          arrival_fall=5e-9)},
            clocks={"phi": "phi1"},
            schedule=schedule)
        assert clocked.violations
        assert clocked.worst_slack() < 0

    def test_shift_register_two_phase(self):
        net = shift_register(CMOS3, stages=2)
        schedule = ClockSchedule.two_phase(40e-9, separation=2e-9)
        clocked = analyze_clocked(
            net,
            data_inputs={"din": InputSpec(arrival_rise=0.0,
                                          arrival_fall=0.0)},
            clocks={"phi1": "phi1", "phi2": "phi2"},
            schedule=schedule)
        # Every clocked storage node got a check; a generous period passes.
        assert len(clocked.checks) >= 4
        assert clocked.worst_slack() is not None

    def test_report_renders(self):
        net = half_stage(CMOS3)
        schedule = ClockSchedule(
            period=20e-9, phases={"phi1": ClockPhase("phi1", 0.0, 10e-9)})
        clocked = analyze_clocked(
            net, data_inputs={"din": 0.0}, clocks={"phi": "phi1"},
            schedule=schedule)
        text = format_setup_report(clocked)
        assert "setup checks" in text and "worst slack" in text

    def test_nmos_works_too(self):
        net = half_stage(NMOS4)
        schedule = ClockSchedule(
            period=100e-9, phases={"phi1": ClockPhase("phi1", 0.0, 50e-9)})
        clocked = analyze_clocked(
            net, data_inputs={"din": 0.0}, clocks={"phi": "phi1"},
            schedule=schedule)
        assert clocked.worst_slack() is not None


class TestMinimumPeriod:
    def test_min_period_brackets_behaviour(self):
        net = half_stage(CMOS3)
        template = ClockSchedule(
            period=40e-9, phases={"phi1": ClockPhase("phi1", 0.0, 20e-9)})
        period = minimum_period(
            net, data_inputs={"din": 0.0}, clocks={"phi": "phi1"},
            template=template)
        assert 0 < period < 40e-9
        # The returned period passes; 1/4 of it fails.
        scale = period / template.period
        passing = ClockSchedule(
            period=period,
            phases={"phi1": ClockPhase("phi1", 0.0, 20e-9 * scale)})
        clocked = analyze_clocked(net, {"din": 0.0}, {"phi": "phi1"},
                                  passing)
        assert not clocked.violations


class TestParallelDifferential:
    """Setup checks computed from a parallel analysis must match serial.

    :func:`setup_checks` consumes only the :class:`TimingResult`; the
    level-front executor guarantees bit-identical arrivals, so every
    derived check — slack, required time, ok flag — must compare equal
    (frozen-dataclass equality, no tolerance).
    """

    STAGES = 3

    @classmethod
    def _fixture(cls):
        from repro.core.timing import TimingAnalyzer
        from repro.parallel import ParallelConfig, ParallelExecutor
        from repro.parallel.worker import AnalyzerSpec

        if not hasattr(cls, "_net"):
            cls._net = shift_register(CMOS3, stages=cls.STAGES)
            cls._schedule = ClockSchedule.two_phase(40e-9, separation=2e-9)
            cls._clocks = {"phi1": "phi1", "phi2": "phi2"}
            cls._analyzer = TimingAnalyzer(cls._net)
            cls._config = ParallelConfig(jobs=2, min_front=1)
            cls._executor = ParallelExecutor(
                AnalyzerSpec.from_analyzer(cls._analyzer), cls._config)
        return cls._net

    def _inputs(self, din_rise, din_fall):
        from repro.core.timing.clocking import clock_input_spec
        schedule = type(self)._schedule
        inputs = {"din": InputSpec(arrival_rise=din_rise,
                                   arrival_fall=din_fall)}
        for clock, phase_name in type(self)._clocks.items():
            inputs[clock] = clock_input_spec(
                schedule.phase(phase_name), schedule.clock_slope)
        return inputs

    def _checks(self, din_rise, din_fall):
        from repro.core.timing import TimingAnalyzer, setup_checks
        from repro.parallel import parallel_analyze

        cls = type(self)
        net = self._fixture()
        inputs = self._inputs(din_rise, din_fall)
        serial = TimingAnalyzer(net).analyze(inputs)
        par = parallel_analyze(
            net, inputs, jobs=2, analyzer=cls._analyzer,
            config=cls._config, executor=cls._executor)
        assert not par.perf.parallel.fell_back
        return (setup_checks(net, serial, cls._clocks, cls._schedule),
                setup_checks(net, par, cls._clocks, cls._schedule))

    def test_checks_identical_for_nominal_arrivals(self):
        serial, par = self._checks(0.0, 0.0)
        assert serial, "fixture produced no setup checks"
        assert serial == par

    def test_checks_identical_for_late_data(self):
        serial, par = self._checks(15e-9, 12e-9)
        assert serial == par

    @given(
        din_rise=st.floats(min_value=0.0, max_value=30e-9),
        din_fall=st.floats(min_value=0.0, max_value=30e-9),
    )
    @settings(max_examples=8, deadline=None)
    def test_checks_identical_under_hypothesis(self, din_rise, din_fall):
        serial, par = self._checks(din_rise, din_fall)
        assert serial == par

    @classmethod
    def teardown_class(cls):
        if hasattr(cls, "_executor"):
            cls._executor.shutdown()
