"""Hypothesis round-trip properties for the interchange formats.

Two serialization layers carry analysis state across process
boundaries, and both claim exactness:

* the two-edge vector grammar (``NODE=RISE~FALL[/SLOPE]``) writes times
  as ``repr`` floats — shortest round-trip formatting — so
  ``parse(format(x)) == x`` must hold for **any** finite float
  (reproducer ``.vec`` files and the service wire protocol both lean on
  this);
* the ``.sim`` dumper writes 12 significant digits, which is exact for
  values on the integer grids the generators and real netlists use
  (integer lambda geometry, integer-femtofarad capacitance, integer
  ohms) — ``loads(dumps(net))`` must reproduce the network
  structurally, bit-for-bit on every stored float.

These are the properties the verify subsystem's replay path and the
timing service's bit-identity guarantee stand on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.vectors import (
    Vector,
    format_timing_token,
    format_vector_line,
    parse_timing_token,
    parse_vector_line,
)
from repro.core.timing.analyzer import InputSpec
from repro.netlist import sim_format
from repro.tech import CMOS3

# ---------------------------------------------------------------------------
# Timing tokens: exact for arbitrary finite floats
# ---------------------------------------------------------------------------

_NODE_NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True)

_TIMES = st.floats(min_value=0.0, max_value=1e-6, allow_nan=False,
                   allow_infinity=False)
_WILD_TIMES = st.floats(allow_nan=False, allow_infinity=False)
_SLOPES = st.floats(min_value=0.0, max_value=1e-6, allow_nan=False,
                    allow_infinity=False)


@st.composite
def input_specs(draw, times=_TIMES):
    """Any spec the grammar can express: each edge present or disabled,
    optional slope.  A fully static spec drops its slope on the wire
    (``name=-`` carries no ``/SLOPE``), so the strategy pins it to 0."""
    rise = draw(st.one_of(st.none(), times))
    fall = draw(st.one_of(st.none(), times))
    if rise is None and fall is None:
        slope = 0.0
    else:
        slope = draw(_SLOPES)
    return InputSpec(arrival_rise=rise, arrival_fall=fall, slope=slope)


class TestTimingTokenRoundTrip:
    @given(name=_NODE_NAMES, spec=input_specs())
    @settings(max_examples=300, deadline=None)
    def test_token_round_trips_exactly(self, name, spec):
        token = format_timing_token(name, spec)
        parsed_name, parsed = parse_timing_token(token)
        assert parsed_name == name
        assert parsed == spec  # exact float equality via dataclass eq

    @given(name=_NODE_NAMES, spec=input_specs(times=_WILD_TIMES))
    @settings(max_examples=300, deadline=None)
    def test_token_round_trips_for_any_finite_float(self, name, spec):
        # repr() is shortest-round-trip: even denormals, negative times
        # and 17-significant-digit values survive the wire.
        parsed_name, parsed = parse_timing_token(
            format_timing_token(name, spec))
        assert parsed_name == name
        assert parsed == spec

    @given(st.lists(st.tuples(_NODE_NAMES, input_specs()),
                    min_size=1, max_size=6, unique_by=lambda t: t[0]),
           st.from_regex(r"[a-z][a-z0-9._-]{0,11}", fullmatch=True),
           st.integers(min_value=0, max_value=99))
    @settings(max_examples=150, deadline=None)
    def test_vector_line_round_trips_exactly(self, items, label, position):
        vector = Vector(label=label, inputs=dict(items))
        line = format_vector_line(vector)
        parsed = parse_vector_line(line, position)
        assert parsed.label == label
        assert dict(parsed.inputs) == dict(vector.inputs)


# ---------------------------------------------------------------------------
# .sim dump: exact on integer grids
# ---------------------------------------------------------------------------

_SIGNALS = ("a", "b", "c", "mid", "n1", "n2", "out", "y")
_CHANNEL = _SIGNALS + ("gnd", "vdd")


@st.composite
def sim_texts(draw):
    """Random ``.sim`` text on the generators' integer grids: integer
    lambda geometry, integer-femtofarad caps, integer ohms — the regime
    the 12-significant-digit dump is exact in (see
    ``sim_format.dumps``)."""
    lines = []
    inputs = draw(st.lists(st.sampled_from(_SIGNALS), min_size=1,
                           max_size=3, unique=True))
    lines.append("i " + " ".join(inputs))
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        letter = draw(st.sampled_from(["e", "p"]))
        gate = draw(st.sampled_from(_SIGNALS))
        source = draw(st.sampled_from(_CHANNEL))
        drain = draw(st.sampled_from(
            [n for n in _CHANNEL if n != source]))
        length = draw(st.integers(min_value=1, max_value=50))
        width = draw(st.integers(min_value=1, max_value=500))
        lines.append(f"{letter} {gate} {source} {drain} {length} {width}")
    # At most one grounded cap per node: the loader folds supply-terminal
    # caps into node.capacitance by float accumulation, and a *sum* of
    # integer-fF values can sit an ulp off the grid (normalizing that is
    # the idempotence test's job, not exact identity's).
    grounded = draw(st.dictionaries(
        st.sampled_from(_SIGNALS),
        st.integers(min_value=1, max_value=10_000), max_size=3))
    for node, femto in sorted(grounded.items()):
        lines.append(f"C {node} gnd {femto}")
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        node = draw(st.sampled_from(_SIGNALS))
        other = draw(st.sampled_from([n for n in _SIGNALS if n != node]))
        femto = draw(st.integers(min_value=1, max_value=10_000))
        lines.append(f"C {node} {other} {femto}")
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        node = draw(st.sampled_from(_SIGNALS))
        other = draw(st.sampled_from(
            ["gnd", "vdd"] + [n for n in _SIGNALS if n != node]))
        ohms = draw(st.integers(min_value=1, max_value=10_000_000))
        lines.append(f"R {node} {other} {ohms}")
    return "\n".join(lines) + "\n"


def _structure(network):
    """Everything the ``.sim`` subset stores, floats included exactly."""
    return (
        sorted(node.name for node in network.inputs()),
        [(t.kind, t.gate, t.source, t.drain, t.width, t.length)
         for t in network.transistors],
        sorted((r.node_a, r.node_b, r.resistance)
               for r in network.resistors),
        sorted((c.node_a, c.node_b, c.capacitance)
               for c in network.capacitors),
        sorted((n.name, n.capacitance) for n in network.signal_nodes),
    )


class TestSimDumpRoundTrip:
    @given(text=sim_texts())
    @settings(max_examples=150, deadline=None)
    def test_dump_parse_is_identity_on_parsed_networks(self, text):
        first = sim_format.loads(text, CMOS3, name="prop")
        dumped = sim_format.dumps(first)
        second = sim_format.loads(dumped, CMOS3, name="prop")
        assert _structure(second) == _structure(first)

    @given(text=sim_texts())
    @settings(max_examples=100, deadline=None)
    def test_dump_is_idempotent(self, text):
        # After one normalization pass the text is a fixed point: the
        # 12-digit values re-print byte-identically.
        network = sim_format.loads(text, CMOS3, name="prop")
        dumped = sim_format.dumps(network)
        assert sim_format.dumps(
            sim_format.loads(dumped, CMOS3, name="prop")) == dumped

    def test_default_geometry_survives(self):
        # Records without explicit L/W take the technology defaults and
        # must dump/parse back to the same floats.
        network = sim_format.loads("i a\ne a gnd y\np a vdd y\n",
                                   CMOS3, name="defaults")
        again = sim_format.loads(sim_format.dumps(network), CMOS3,
                                 name="defaults")
        assert _structure(again) == _structure(network)

    def test_accumulated_grounded_caps_normalize_in_one_pass(self):
        # Three grounded caps on one node fold by float accumulation,
        # which can land an ulp off the femtofarad grid.  The 12-digit
        # dump snaps the sum back onto the grid, and from then on
        # dump/parse is a fixed point.
        text = "i a\ne a gnd y 2 8\nC y gnd 17\nC y gnd 25\nC gnd y 3\n"
        network = sim_format.loads(text, CMOS3, name="caps")
        node = {n.name: n for n in network.signal_nodes}["y"]
        assert node.capacitance == 17 * 1e-15 + 25 * 1e-15 + 3 * 1e-15
        dumped = sim_format.dumps(network)
        assert "C y gnd 45" in dumped
        normalized = sim_format.loads(dumped, CMOS3, name="caps")
        assert sim_format.dumps(normalized) == dumped
