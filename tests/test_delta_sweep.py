"""Tests for the delta-driven sweep engine (ISSUE 7).

Dirty cones on the stage graph, ``analyze_delta`` equivalence and
carryover life-cycle, delta-minimizing vector orderings (Gray code,
greedy Hamming), the sweep engine's delta/order plumbing, delta-aware
chunk boundaries, the simulator's incremental vector API, and the CLI
flags.
"""

import pytest

from repro.batch import (
    VECTOR_ORDERS,
    CartesianSweep,
    ExplicitVectors,
    RandomVectors,
    Vector,
    format_sweep_summary,
    greedy_hamming_order,
    order_vectors,
    pair_deltas,
    run_sweep,
    vector_delta,
)
from repro.circuits import (
    adder_input_names,
    inverter_chain,
    nand_gate,
    ripple_carry_adder,
)
from repro.cli import main
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.errors import SimulationError, SweepError
from repro.parallel import delta_aware_chunks
from repro.switchlevel import SwitchSimulator
from repro.tech import CMOS3


def assert_identical(result, reference, context=None):
    assert set(result.arrivals) == set(reference.arrivals), context
    for event, arrival in result.arrivals.items():
        expected = reference.arrivals[event]
        assert arrival.time == expected.time, (context, event)
        assert arrival.slope == expected.slope, (context, event)
        assert arrival.cause == expected.cause, (context, event)


@pytest.fixture(scope="module")
def rca4():
    return ripple_carry_adder(CMOS3, 4)


@pytest.fixture(scope="module")
def rca4_vectors():
    return list(RandomVectors(input_names=adder_input_names(4), count=6,
                              seed=7, span=1e-9, slope=0.3e-9))


class TestDirtyCone:
    def test_cone_is_forward_closure(self, rca4):
        graph = TimingAnalyzer(rca4).graph
        cone = graph.node_cone("a0")
        assert cone  # a0 drives something
        for index in cone:
            stage = graph.stages[index]
            for successor in graph.successors(stage):
                assert successor.index in cone, (
                    "cone must be closed under stage successors")

    def test_carry_chain_cones_shrink_up_the_chain(self, rca4):
        # A low adder bit dirties the whole carry chain; a high bit only
        # its own slice — smaller cone, but sharing the carry-out tail.
        graph = TimingAnalyzer(rca4).graph
        low, high = graph.node_cone("a0"), graph.node_cone("a3")
        assert len(high) < len(low)
        assert high & low  # both reach the shared carry-out stages

    def test_cone_memoized(self, rca4):
        graph = TimingAnalyzer(rca4).graph
        assert graph.node_cone("b1") is graph.node_cone("b1")

    def test_dirty_cone_unions(self, rca4):
        graph = TimingAnalyzer(rca4).graph
        union = graph.dirty_cone(["a0", "b2"])
        assert union == graph.node_cone("a0") | graph.node_cone("b2")
        assert graph.dirty_cone([]) == frozenset()


class TestAnalyzeDelta:
    def test_first_call_falls_back_to_cold(self, rca4, rca4_vectors):
        analyzer = TimingAnalyzer(rca4)
        result = analyzer.analyze_delta(rca4_vectors[0].inputs)
        reference = TimingAnalyzer(rca4).analyze(rca4_vectors[0].inputs)
        assert_identical(result, reference)
        assert result.perf.get("delta_scenarios") == 0

    def test_delta_matches_fresh_analyzers(self, rca4, rca4_vectors):
        analyzer = TimingAnalyzer(rca4)
        for vector in rca4_vectors:
            result = analyzer.analyze_delta(vector.inputs)
            reference = TimingAnalyzer(rca4).analyze(vector.inputs)
            assert_identical(result, reference, vector.label)

    def test_zero_delta_repeat_revisits_nothing(self, rca4, rca4_vectors):
        analyzer = TimingAnalyzer(rca4)
        first = analyzer.analyze_delta(rca4_vectors[0].inputs)
        again = analyzer.analyze_delta(rca4_vectors[0].inputs)
        assert_identical(again, first)
        assert again.perf.get("stage_visits") == 0
        assert again.perf.get("arrivals_reused") == len(first.arrivals)

    def test_small_delta_skips_stages(self, rca4):
        names = adder_input_names(4)
        base = {name: 0.0 for name in names}
        analyzer = TimingAnalyzer(rca4)
        cold = analyzer.analyze_delta(base)
        moved = dict(base)
        moved["a3"] = 0.4e-9  # high bit: small downstream cone
        warm = analyzer.analyze_delta(moved)
        assert warm.perf.get("delta_scenarios") == 1
        assert warm.perf.get("input_delta") == 1
        assert warm.perf.get("stages_skipped") > 0
        assert (warm.perf.get("stage_visits")
                < cold.perf.get("stage_visits"))
        assert_identical(warm, TimingAnalyzer(rca4).analyze(moved))

    def test_static_edge_transitions_handled(self):
        # Inputs whose rise/fall arrivals vanish (None = held level)
        # between vectors: both directions of the change must re-seed
        # correctly.
        net = nand_gate(CMOS3)
        analyzer = TimingAnalyzer(net)
        both = {"a0": InputSpec(arrival_rise=0.0, arrival_fall=0.0,
                                slope=0.2e-9),
                "a1": 0.0}
        held = {"a0": InputSpec(arrival_rise=None, arrival_fall=None),
                "a1": 0.0}
        for inputs in (both, held, both):
            result = analyzer.analyze_delta(inputs)
            assert_identical(result, TimingAnalyzer(net).analyze(inputs))

    def test_invalidate_caches_clears_carryover(self, rca4, rca4_vectors):
        analyzer = TimingAnalyzer(rca4)
        analyzer.analyze_delta(rca4_vectors[0].inputs)
        analyzer.invalidate_caches()
        result = analyzer.analyze_delta(rca4_vectors[0].inputs)
        # post-invalidation run is a cold analysis, not a zero-delta skip
        assert result.perf.get("delta_scenarios") == 0
        assert result.perf.get("stage_visits") > 0

    def test_clear_carryover_forces_cold_start(self, rca4, rca4_vectors):
        analyzer = TimingAnalyzer(rca4)
        analyzer.analyze_delta(rca4_vectors[0].inputs)
        analyzer.clear_carryover()
        result = analyzer.analyze_delta(rca4_vectors[0].inputs)
        assert result.perf.get("delta_scenarios") == 0

    def test_resize_after_invalidate_is_correct(self):
        net = inverter_chain(CMOS3, 3)
        inputs = {"in": 0.0}
        analyzer = TimingAnalyzer(net)
        analyzer.analyze_delta(inputs)
        for device in net.transistors_gated_by("in"):
            net.resize_transistor(device.name, width=device.width / 4)
        analyzer.invalidate_caches()
        assert_identical(analyzer.analyze_delta(inputs),
                         TimingAnalyzer(net).analyze(inputs))

    def test_invalidation_racing_carryover_sequence(self, rca4,
                                                    rca4_vectors):
        """ISSUE 8 S3: invalidate_caches() interleaved at every position
        of a delta chain — each post-invalidation call must be a clean
        cold rebuild (delta_scenarios == 0, real stage visits), each
        other call a real delta, and every result must match a fresh
        analyzer.  Wrong numbers here would mean stale carryover
        survived the invalidation."""
        for break_at in range(len(rca4_vectors)):
            analyzer = TimingAnalyzer(rca4)
            for index, vector in enumerate(rca4_vectors):
                if index == break_at:
                    device = rca4.transistors[index % len(rca4.transistors)]
                    rca4.resize_transistor(device.name,
                                           width=device.width * 2.0)
                    analyzer.invalidate_caches()
                result = analyzer.analyze_delta(vector.inputs)
                cold = index == 0 or index == break_at
                assert (result.perf.get("delta_scenarios") == 0) == cold, (
                    break_at, index)
                assert result.perf.get("stage_visits") > 0
                assert_identical(result, TimingAnalyzer(rca4).analyze(
                    vector.inputs), ("race", break_at, index))
                if index == break_at:
                    # undo the edit so later break positions start equal
                    # power-of-two factor: the undo is bit-exact, so
                    # the module-scoped fixture is restored unchanged
                    rca4.resize_transistor(device.name,
                                           width=device.width / 2.0)
                    analyzer.invalidate_caches()
                    result = analyzer.analyze_delta(vector.inputs)
                    assert result.perf.get("delta_scenarios") == 0


class TestOrderings:
    def _binary_axes(self, names):
        return CartesianSweep(base={}, axes={n: [0.0, 0.5e-9]
                                             for n in names})

    def test_gray_permutation_adjacent_delta_one(self):
        source = self._binary_axes(["a", "b", "c"])
        vectors = list(source)
        permutation = source.gray_permutation()
        assert sorted(permutation) == list(range(8))
        ordered = [vectors[i] for i in permutation]
        assert pair_deltas(ordered) == [0] + [1] * 7

    def test_gray_mixed_radix(self):
        source = CartesianSweep(
            base={}, axes={"a": [0.0, 0.2e-9, 0.4e-9],
                           "b": [0.0, 0.5e-9]})
        vectors = list(source)
        permutation = source.gray_permutation()
        assert sorted(permutation) == list(range(6))
        ordered = [vectors[i] for i in permutation]
        assert all(d == 1 for d in pair_deltas(ordered)[1:])

    def test_vector_delta_counts_both_directions(self):
        a = Vector(label="a", inputs={"x": InputSpec(arrival_rise=0.0,
                                                     arrival_fall=0.0)})
        b = Vector(label="b", inputs={"y": InputSpec(arrival_rise=0.0,
                                                     arrival_fall=0.0)})
        assert vector_delta(a, a) == 0
        assert vector_delta(a, b) == 2  # x removed, y added

    def test_greedy_beats_given_on_shuffled_gray(self):
        source = self._binary_axes(["a", "b", "c", "d"])
        vectors = list(source)
        # worst-case-ish order: stride through the row-major list
        shuffled = [vectors[(5 * i) % 16] for i in range(16)]
        given = sum(pair_deltas(shuffled)[1:])
        greedy = [shuffled[i] for i in greedy_hamming_order(shuffled)]
        assert sum(pair_deltas(greedy)[1:]) < given
        assert greedy_hamming_order(shuffled)[0] == 0  # anchored start

    def test_order_vectors_validates_and_falls_back(self):
        vectors = list(self._binary_axes(["a", "b"]))
        assert order_vectors(vectors, "given") == list(range(4))
        with pytest.raises(SweepError):
            order_vectors(vectors, "sideways")
        # gray without a cartesian source degrades to greedy
        assert (order_vectors(vectors, "gray")
                == order_vectors(vectors, "greedy"))
        assert set(VECTOR_ORDERS) == {"given", "gray", "greedy"}


class TestRunSweepDelta:
    def test_delta_sweep_matches_full(self, rca4, rca4_vectors):
        full = run_sweep(rca4, rca4_vectors)
        for order in VECTOR_ORDERS:
            sweep = run_sweep(rca4, rca4_vectors, delta=True, order=order)
            assert ([o.label for o in sweep.outcomes]
                    == [o.label for o in full.outcomes])
            for a, b in zip(full.outcomes, sweep.outcomes):
                assert_identical(b.result, a.result, (order, a.label))

    def test_gray_order_reports_source_order(self, rca4):
        names = adder_input_names(4)
        source = CartesianSweep(base={n: 0.0 for n in names},
                                axes={"a2": [0.0, 0.4e-9],
                                      "b3": [0.0, 0.4e-9]})
        sweep = run_sweep(rca4, source, delta=True, order="gray")
        assert [o.label for o in sweep.outcomes] == [v.label for v in source]
        stats = sweep.order_stats
        assert stats.order == "gray" and stats.delta
        assert stats.deltas[0] == 0 and stats.max_delta == 1
        assert stats.mean_delta == pytest.approx(1.0)
        # the summary report mentions the mode
        summary = format_sweep_summary(sweep, critical_path=False)
        assert "delta (dirty-cone)" in summary and "order gray" in summary

    def test_delta_cuts_stage_visits(self, rca4):
        names = adder_input_names(4)
        source = CartesianSweep(base={n: 0.0 for n in names},
                                axes={"a1": [0.0, 0.4e-9],
                                      "a2": [0.0, 0.4e-9],
                                      "a3": [0.0, 0.4e-9]})
        full = run_sweep(rca4, source, order="gray")
        delta = run_sweep(rca4, source, delta=True, order="gray")
        assert (delta.batch_perf.total.get("stage_visits")
                < full.batch_perf.total.get("stage_visits"))
        assert delta.batch_perf.delta_skip_rate > 0
        assert "delta sweeps:" in delta.batch_perf.format_table()

    def test_delta_composes_with_jobs(self, rca4, rca4_vectors):
        serial = run_sweep(rca4, rca4_vectors, delta=True, order="greedy")
        sharded = run_sweep(rca4, rca4_vectors, delta=True, order="greedy",
                            jobs=2)
        for a, b in zip(serial.outcomes, sharded.outcomes):
            assert a.label == b.label
            assert_identical(b.result, a.result, a.label)
        assert sharded.parallel is not None

    def test_delta_composes_with_python_kernel(self, rca4, rca4_vectors):
        numpy_side = run_sweep(rca4, rca4_vectors, delta=True)
        python_side = run_sweep(rca4, rca4_vectors, delta=True,
                                kernel="python")
        for a, b in zip(numpy_side.outcomes, python_side.outcomes):
            for event, arrival in a.result.arrivals.items():
                other = b.result.arrivals[event]
                assert arrival.time == pytest.approx(other.time, abs=1e-18)

    def test_duplicate_labels_rejected(self, rca4, rca4_vectors):
        doubled = rca4_vectors + [rca4_vectors[2]]
        with pytest.raises(SweepError, match="duplicate vector label"):
            run_sweep(rca4, doubled)
        with pytest.raises(SweepError, match=rca4_vectors[2].label):
            run_sweep(rca4, doubled)


class TestDeltaAwareChunks:
    def test_partitions_every_index(self):
        deltas = [0, 1, 9, 1, 1, 8, 1, 1]
        spans = delta_aware_chunks(deltas, 3)
        assert spans[0][0] == 0 and spans[-1][1] == len(deltas)
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo
        assert all(hi > lo for lo, hi in spans)

    def test_prefers_high_delta_boundaries(self):
        # equal-count cut would be at 4; the high delta sits at 5
        deltas = [0, 1, 1, 1, 1, 9, 1, 1]
        spans = delta_aware_chunks(deltas, 2)
        assert spans == [(0, 5), (5, 8)]

    def test_uniform_deltas_degenerate_to_balanced(self):
        spans = delta_aware_chunks([1] * 8, 2)
        assert spans == [(0, 4), (4, 8)]

    def test_edge_cases(self):
        assert delta_aware_chunks([], 4) == []
        assert delta_aware_chunks([0, 1], 1) == [(0, 2)]
        assert delta_aware_chunks([0], 4) == [(0, 1)]
        with pytest.raises(ValueError):
            delta_aware_chunks([0, 1], 0)

    def test_deterministic(self):
        deltas = [0, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        assert (delta_aware_chunks(deltas, 4)
                == delta_aware_chunks(list(deltas), 4))


class TestSimulatorIncrement:
    def test_set_vector_reports_changes_and_skips_unchanged(self):
        net = ripple_carry_adder(CMOS3, 2)
        sim = SwitchSimulator(net)
        names = adder_input_names(2)
        changed = sim.set_vector({name: 0 for name in names})
        first = sim.settle()
        assert changed == set(names)
        assert first.stages_solved > 0
        # identical vector: nothing dirty, nothing solved
        assert sim.set_vector({name: 0 for name in names}) == set()
        assert sim.settle().stages_solved == 0
        # single-bit flip: strictly less work than the cold settle
        assert sim.set_vector({"a1": 1}) == {"a1"}
        incremental = sim.settle()
        assert 0 < incremental.stages_solved < first.stages_solved

    def test_mark_dirty_rejects_unknown_node(self):
        net = nand_gate(CMOS3)
        sim = SwitchSimulator(net)
        with pytest.raises(SimulationError, match="unknown node"):
            sim._mark_dirty("no-such-node")


class TestRandomVectorDeterminism:
    def test_pinned_values_are_platform_stable(self):
        # RandomVectors documents platform determinism: a private
        # random.Random(seed) over an integer grid.  These exact values
        # pin that contract — a change here is a cross-platform or
        # cross-version reproducibility break, not noise.
        vecs = list(RandomVectors(input_names=["a", "b"], count=2, seed=42,
                                  span=1e-9, slope=0.3e-9))
        assert [v.label for v in vecs] == ["r0", "r1"]
        got = [(v.inputs["a"].arrival_rise, v.inputs["b"].arrival_rise)
               for v in vecs]
        assert got == [(6.54e-10, 1.14e-10), (2.5e-11, 7.59e-10)]

    def test_same_seed_same_vectors(self):
        a = list(RandomVectors(input_names=["x"], count=4, seed=9))
        b = list(RandomVectors(input_names=["x"], count=4, seed=9))
        assert [v.inputs["x"] for v in a] == [v.inputs["x"] for v in b]


class TestCliDeltaFlags:
    @pytest.fixture()
    def nand_file(self, tmp_path):
        path = tmp_path / "nand.sim"
        path.write_text("i a b\n"
                        "n a mid y 2 8\n"
                        "n b gnd mid 2 8\n"
                        "p a vdd y 2 8\n"
                        "p b vdd y 2 8\n")
        return str(path)

    def _vec_file(self, tmp_path, text):
        path = tmp_path / "vecs.txt"
        path.write_text(text)
        return str(path)

    def test_delta_flag_is_output_invariant(self, nand_file, tmp_path,
                                            capsys):
        vecs = self._vec_file(
            tmp_path, "@t0 a=0 b=0\n@t1 a=300p b=0\n@t2 a=0 b=150p\n")
        base = ["sweep", nand_file, "--tech", "cmos3", "--no-characterize",
                "--vectors", vecs, "--no-critical-path"]
        assert main(base + ["--no-delta"]) == 0
        cold = capsys.readouterr().out
        assert main(base + ["--delta"]) == 0
        delta = capsys.readouterr().out
        # same scenarios, same arrivals; only the mode line differs
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("analysis:")]
        assert strip(delta) == strip(cold)
        assert any(line.startswith("analysis: delta")
                   for line in delta.splitlines())

    def test_order_flag(self, nand_file, capsys):
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--input", "b=0",
                     "--sweep", "a=0,200p,400p", "--order", "gray",
                     "--no-critical-path"])
        out = capsys.readouterr().out
        assert code == 0
        assert "order gray" in out

    def test_unknown_order_rejected(self, nand_file, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", nand_file, "--tech", "cmos3",
                  "--no-characterize", "--input", "b=0",
                  "--sweep", "a=0,200p", "--order", "sideways"])
