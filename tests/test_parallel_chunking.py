"""Tests for the cost-model chunkers and the per-stage cost model."""

import pytest

from repro.core.timing import TimingAnalyzer
from repro.circuits import ripple_carry_adder
from repro.parallel import (
    balanced_chunks,
    chunk_weight,
    contiguous_chunks,
    structural_weight,
)
from repro.perf import StageCostModel
from repro.tech import CMOS3


class TestBalancedChunks:
    def test_partitions_every_index_once(self):
        chunks = balanced_chunks([3.0, 1.0, 4.0, 1.0, 5.0, 9.0], 3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(6))

    def test_deterministic(self):
        weights = [7.0, 2.0, 2.0, 7.0, 1.0, 5.0, 3.0]
        assert balanced_chunks(weights, 3) == balanced_chunks(weights, 3)

    def test_balances_skewed_weights(self):
        # One heavy item and many light ones: LPT must isolate the heavy
        # item instead of stacking light ones on top of it.
        weights = [100.0] + [1.0] * 10
        chunks = balanced_chunks(weights, 2)
        loads = sorted(chunk_weight(weights, c) for c in chunks)
        assert loads == [10.0, 100.0]

    def test_beats_round_robin_on_skew(self):
        weights = [50.0, 1.0, 50.0, 1.0, 50.0, 1.0]
        chunks = balanced_chunks(weights, 2)
        lpt_makespan = max(chunk_weight(weights, c) for c in chunks)
        rr = [[0, 2, 4], [1, 3, 5]]  # round-robin stacks all heavy items
        rr_makespan = max(chunk_weight(weights, c) for c in rr)
        assert lpt_makespan < rr_makespan

    def test_more_jobs_than_items(self):
        chunks = balanced_chunks([1.0, 2.0], 8)
        assert len(chunks) == 2
        assert all(len(c) == 1 for c in chunks)

    def test_empty_and_invalid(self):
        assert balanced_chunks([], 4) == []
        with pytest.raises(ValueError):
            balanced_chunks([1.0], 0)

    def test_chunks_are_sorted_ascending(self):
        chunks = balanced_chunks([5.0, 1.0, 5.0, 1.0, 5.0], 2)
        for chunk in chunks:
            assert chunk == sorted(chunk)


class TestContiguousChunks:
    def test_covers_range_contiguously(self):
        spans = contiguous_chunks([1.0] * 10, 3)
        assert spans[0][0] == 0
        assert spans[-1][1] == 10
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo

    def test_all_nonempty(self):
        for jobs in (1, 2, 3, 7, 10, 20):
            spans = contiguous_chunks([1.0] * 7, jobs)
            assert all(hi > lo for lo, hi in spans)
            assert len(spans) <= min(jobs, 7)

    def test_near_equal_uniform_split(self):
        spans = contiguous_chunks([1.0] * 12, 4)
        sizes = [hi - lo for lo, hi in spans]
        assert sizes == [3, 3, 3, 3]

    def test_weighted_split_tracks_cost(self):
        # Heavy head: the first chunk should stop early.
        weights = [10.0, 10.0] + [1.0] * 10
        spans = contiguous_chunks(weights, 2)
        first = sum(weights[lo:hi][0] for lo, hi in spans[:1])
        assert spans[0][1] <= 4  # not half the items

    def test_invalid(self):
        assert contiguous_chunks([], 2) == []
        with pytest.raises(ValueError):
            contiguous_chunks([1.0], -1)


class TestStructuralWeight:
    def test_positive_and_monotone(self):
        net = ripple_carry_adder(CMOS3, 2)
        stages = TimingAnalyzer(net).graph.stages
        weights = [structural_weight(s) for s in stages]
        assert all(w >= 1.0 for w in weights)
        big = max(stages, key=lambda s: len(s.transistors))
        small = min(stages, key=lambda s: len(s.transistors))
        assert structural_weight(big) >= structural_weight(small)


class TestStageCostModel:
    def test_observe_and_mean(self):
        model = StageCostModel()
        model.observe(3, 10)
        model.observe(3, 20)
        assert model.mean_cost(3) == pytest.approx(15.0)
        assert model.mean_cost(99) is None

    def test_weight_falls_back_when_cold(self):
        model = StageCostModel()
        assert model.weight(5, fallback=42.0) == pytest.approx(42.0)
        model.observe(5, 8)
        assert model.weight(5, fallback=42.0) == pytest.approx(8.0)

    def test_weight_floor(self):
        model = StageCostModel()
        model.observe(1, 0)
        assert model.weight(1) > 0.0

    def test_merge(self):
        a, b = StageCostModel(), StageCostModel()
        a.observe(1, 4)
        b.observe(1, 6)
        b.observe(2, 3)
        a.merge(b)
        assert a.mean_cost(1) == pytest.approx(5.0)
        assert a.mean_cost(2) == pytest.approx(3.0)

    def test_merge_raw_and_clear(self):
        model = StageCostModel()
        model.merge_raw({7: 12.0})
        assert len(model) == 1
        model.clear()
        assert len(model) == 0

    def test_analyzer_populates_costs(self):
        net = ripple_carry_adder(CMOS3, 2)
        analyzer = TimingAnalyzer(net)
        from repro.circuits import adder_input_names
        analyzer.analyze({n: 0.0 for n in adder_input_names(2)})
        assert len(analyzer.stage_costs) > 0
        assert all(v >= 0 for v in analyzer.stage_costs.observed.values())
