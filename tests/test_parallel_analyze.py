"""Bit-identity and robustness tests for level-front stage sharding."""

import pytest

from repro.circuits import (
    adder_input_names,
    bootstrap_driver,
    ripple_carry_adder,
    wide_datapath,
    wide_datapath_input_names,
)
from repro.core.timing import TimingAnalyzer
from repro.errors import TimingError
from repro.parallel import ParallelConfig, parallel_analyze
from repro.tech import CMOS3, NMOS4


def assert_identical(a, b):
    assert set(a.arrivals) == set(b.arrivals)
    for event in a.arrivals:
        assert a.arrivals[event].time == b.arrivals[event].time, event
        assert a.arrivals[event].slope == b.arrivals[event].slope, event


@pytest.fixture(scope="module")
def rca():
    return ripple_carry_adder(CMOS3, 4)


@pytest.fixture(scope="module")
def rca_inputs():
    return {name: 0.0 for name in adder_input_names(4)}


@pytest.fixture(scope="module")
def serial_result(rca, rca_inputs):
    return TimingAnalyzer(rca).analyze(rca_inputs)


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_matches_serial(self, rca, rca_inputs, serial_result, jobs):
        result = parallel_analyze(
            rca, rca_inputs, jobs=jobs,
            config=ParallelConfig(jobs=jobs, min_front=1))
        assert_identical(serial_result, result)
        assert result.perf.parallel.strategy == "level-front"
        assert not result.perf.parallel.fell_back

    def test_wide_datapath(self):
        net = wide_datapath(CMOS3, slices=4, bits=2)
        inputs = {n: 0.0 for n in wide_datapath_input_names(4, 2)}
        serial = TimingAnalyzer(net).analyze(inputs)
        result = parallel_analyze(
            net, inputs, jobs=2, config=ParallelConfig(jobs=2, min_front=2))
        assert_identical(serial, result)

    def test_staggered_inputs(self, rca, serial_result):
        inputs = {name: i * 0.1e-9
                  for i, name in enumerate(adder_input_names(4))}
        serial = TimingAnalyzer(rca).analyze(inputs)
        result = parallel_analyze(
            rca, inputs, jobs=2, config=ParallelConfig(jobs=2, min_front=1))
        assert_identical(serial, result)

    def test_critical_path_identical(self, rca, rca_inputs, serial_result):
        result = parallel_analyze(
            rca, rca_inputs, jobs=2,
            config=ParallelConfig(jobs=2, min_front=1))
        s_event, s_arr = serial_result.worst()
        p_event, p_arr = result.worst()
        assert s_event == p_event and s_arr.time == p_arr.time
        s_chain = serial_result.critical_path(s_event.node,
                                              s_event.transition)
        p_chain = result.critical_path(p_event.node, p_event.transition)
        assert [e for e, _ in s_chain] == [e for e, _ in p_chain]


class TestFallbacks:
    def test_jobs_one_is_serial_passthrough(self, rca, rca_inputs,
                                            serial_result):
        result = parallel_analyze(rca, rca_inputs, jobs=1)
        assert_identical(serial_result, result)
        assert result.perf.parallel.strategy == "serial"
        assert not result.perf.parallel.fell_back

    def test_feedback_graph_falls_back_to_serial(self):
        net = bootstrap_driver(NMOS4)
        analyzer = TimingAnalyzer(net)
        assert analyzer.graph.has_feedback()
        serial = TimingAnalyzer(net).analyze({"in": 0.0})
        result = parallel_analyze(net, {"in": 0.0}, jobs=2)
        assert_identical(serial, result)
        pp = result.perf.parallel
        assert pp.fell_back
        assert any("feedback" in event for event in pp.fallback_events)

    def test_bad_inputs_raise_like_serial(self, rca):
        with pytest.raises(TimingError):
            parallel_analyze(rca, {"a0": 0.0}, jobs=2,
                             config=ParallelConfig(jobs=2, min_front=1))


class TestWarmAnalyzerReuse:
    def test_observed_costs_drive_second_run(self, rca, rca_inputs,
                                             serial_result):
        analyzer = TimingAnalyzer(rca)
        config = ParallelConfig(jobs=2, min_front=1)
        first = parallel_analyze(rca, rca_inputs, jobs=2,
                                 analyzer=analyzer, config=config)
        assert len(analyzer.stage_costs) > 0
        second = parallel_analyze(rca, rca_inputs, jobs=2,
                                  analyzer=analyzer, config=config)
        assert_identical(serial_result, first)
        assert_identical(serial_result, second)

    def test_small_fronts_run_inline(self, rca, rca_inputs, serial_result):
        # min_front above every front width: no dispatch, no pool, still
        # the parallel code path and still identical.
        result = parallel_analyze(
            rca, rca_inputs, jobs=2,
            config=ParallelConfig(jobs=2, min_front=10_000))
        assert_identical(serial_result, result)
        assert result.perf.parallel.chunk_count == 0


class TestParallelPerfShape:
    def test_stats_recorded(self, rca, rca_inputs):
        result = parallel_analyze(
            rca, rca_inputs, jobs=2,
            config=ParallelConfig(jobs=2, min_front=1))
        pp = result.perf.parallel
        assert pp.jobs == 2
        assert pp.dispatches, "no dispatch stats recorded"
        assert pp.chunk_count >= len(pp.dispatches)
        assert pp.busy_seconds > 0.0
        payload = pp.as_dict()
        assert payload["strategy"] == "level-front"
        assert payload["dispatches"]
        table = result.perf.format_table()
        assert "parallel: level-front" in table
