"""Tests for the per-stage steady-state solver."""

import pytest

from repro.netlist import Network, decompose_stages
from repro.switchlevel import Logic, conduction_state, solve_stage
from repro.tech import CMOS3, NMOS4, DeviceKind


class TestConductionState:
    def test_nmos(self):
        on = conduction_state(DeviceKind.NMOS_ENH, Logic.ONE, False)
        assert on.definite and on.possible
        off = conduction_state(DeviceKind.NMOS_ENH, Logic.ZERO, False)
        assert not off.definite and not off.possible
        maybe = conduction_state(DeviceKind.NMOS_ENH, Logic.X, False)
        assert not maybe.definite and maybe.possible

    def test_pmos_inverted(self):
        on = conduction_state(DeviceKind.PMOS, Logic.ZERO, False)
        assert on.definite
        off = conduction_state(DeviceKind.PMOS, Logic.ONE, False)
        assert not off.possible

    def test_depletion_always_on(self):
        for value in Logic:
            state = conduction_state(DeviceKind.NMOS_DEP, value, True)
            assert state.definite


def single_stage(net):
    stages = decompose_stages(net)
    assert len(stages) == 1
    return stages[0]


class TestCMOSStage:
    @pytest.fixture
    def inverter(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y")
        net.mark_input("a")
        return net

    def test_inverter_low(self, inverter):
        stage = single_stage(inverter)
        out = solve_stage(inverter, stage, {"a": Logic.ONE})
        assert out["y"] is Logic.ZERO

    def test_inverter_high(self, inverter):
        stage = single_stage(inverter)
        out = solve_stage(inverter, stage, {"a": Logic.ZERO})
        assert out["y"] is Logic.ONE

    def test_inverter_x_in_x_out(self, inverter):
        stage = single_stage(inverter)
        out = solve_stage(inverter, stage, {"a": Logic.X})
        assert out["y"] is Logic.X

    def test_missing_signal_defaults_to_x(self, inverter):
        stage = single_stage(inverter)
        out = solve_stage(inverter, stage, {})
        assert out["y"] is Logic.X


class TestNMOSStage:
    @pytest.fixture
    def inverter(self):
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                           width=8e-6, length=2e-6)
        net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd",
                           width=2e-6, length=8e-6)
        net.mark_input("a")
        return net

    def test_pulldown_beats_load(self, inverter):
        stage = single_stage(inverter)
        out = solve_stage(inverter, stage, {"a": Logic.ONE})
        assert out["y"] is Logic.ZERO

    def test_load_pulls_up_when_released(self, inverter):
        stage = single_stage(inverter)
        out = solve_stage(inverter, stage, {"a": Logic.ZERO, "y": Logic.ZERO})
        assert out["y"] is Logic.ONE


class TestChargeBehaviour:
    def test_isolated_node_keeps_charge(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "en", "in", "store")
        net.mark_input("en", "in")
        stage = single_stage(net)
        out = solve_stage(net, stage,
                          {"en": Logic.ZERO, "store": Logic.ONE})
        assert out["store"] is Logic.ONE

    def test_pass_on_overwrites_charge(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "en", "in", "store")
        net.mark_input("en", "in")
        stage = single_stage(net)
        out = solve_stage(net, stage, {"en": Logic.ONE, "in": Logic.ZERO,
                                       "store": Logic.ONE})
        assert out["store"] is Logic.ZERO

    def test_charge_sharing_conflict_is_x(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "en", "left", "right")
        net.mark_input("en")
        # Both channel nodes are internal storage with opposite charge.
        stage = single_stage(net)
        out = solve_stage(net, stage, {"en": Logic.ONE, "left": Logic.ONE,
                                       "right": Logic.ZERO})
        assert out["left"] is Logic.X
        assert out["right"] is Logic.X

    def test_maybe_conducting_pass_poisons(self):
        """X on a pass gate: stored 1 might be overwritten by a driven 0."""
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "en", "in", "store")
        net.mark_input("en", "in")
        stage = single_stage(net)
        out = solve_stage(net, stage, {"en": Logic.X, "in": Logic.ZERO,
                                       "store": Logic.ONE})
        assert out["store"] is Logic.X

    def test_maybe_conducting_agreeing_value_stays(self):
        """X on the pass gate but both sides agree: no uncertainty."""
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "en", "in", "store")
        net.mark_input("en", "in")
        stage = single_stage(net)
        out = solve_stage(net, stage, {"en": Logic.X, "in": Logic.ONE,
                                       "store": Logic.ONE})
        assert out["store"] is Logic.ONE


class TestFights:
    def test_driven_fight_is_x(self):
        """Two rails fighting through on transistors: X."""
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "g1", "gnd", "y")
        net.add_transistor(DeviceKind.NMOS_ENH, "g2", "vdd", "y")
        net.mark_input("g1", "g2")
        stage = single_stage(net)
        out = solve_stage(net, stage, {"g1": Logic.ONE, "g2": Logic.ONE})
        assert out["y"] is Logic.X

    def test_driven_beats_depletion(self):
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_ENH, "g", "gnd", "y")
        net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd")
        net.mark_input("g")
        stage = single_stage(net)
        out = solve_stage(net, stage, {"g": Logic.ONE})
        assert out["y"] is Logic.ZERO

    def test_depletion_beats_charge(self):
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_ENH, "g", "gnd", "y")
        net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd")
        net.mark_input("g")
        stage = single_stage(net)
        out = solve_stage(net, stage, {"g": Logic.ZERO, "y": Logic.ZERO})
        assert out["y"] is Logic.ONE

    def test_resistor_connects_at_full_strength(self):
        net = Network(CMOS3)
        net.add_resistor("vdd", "y", 1e3)
        net.add_transistor(DeviceKind.NMOS_ENH, "g", "gnd", "y")
        net.mark_input("g")
        stage = single_stage(net)
        out = solve_stage(net, stage, {"g": Logic.ZERO})
        assert out["y"] is Logic.ONE
        # With the pulldown on, two DRIVEN sources fight: X.
        out = solve_stage(net, stage, {"g": Logic.ONE})
        assert out["y"] is Logic.X
