"""Tests for ternary logic values and strengths."""

import pytest

from repro.switchlevel import Logic, Strength, resolve


class TestLogicOperators:
    def test_invert(self):
        assert ~Logic.ZERO is Logic.ONE
        assert ~Logic.ONE is Logic.ZERO
        assert ~Logic.X is Logic.X

    @pytest.mark.parametrize("a,b,expected", [
        (Logic.ZERO, Logic.ZERO, Logic.ZERO),
        (Logic.ZERO, Logic.ONE, Logic.ZERO),
        (Logic.ONE, Logic.ONE, Logic.ONE),
        (Logic.ZERO, Logic.X, Logic.ZERO),  # 0 dominates AND
        (Logic.ONE, Logic.X, Logic.X),
        (Logic.X, Logic.X, Logic.X),
    ])
    def test_and(self, a, b, expected):
        assert (a & b) is expected
        assert (b & a) is expected

    @pytest.mark.parametrize("a,b,expected", [
        (Logic.ZERO, Logic.ZERO, Logic.ZERO),
        (Logic.ZERO, Logic.ONE, Logic.ONE),
        (Logic.ONE, Logic.ONE, Logic.ONE),
        (Logic.ONE, Logic.X, Logic.ONE),  # 1 dominates OR
        (Logic.ZERO, Logic.X, Logic.X),
        (Logic.X, Logic.X, Logic.X),
    ])
    def test_or(self, a, b, expected):
        assert (a | b) is expected
        assert (b | a) is expected

    @pytest.mark.parametrize("a,b,expected", [
        (Logic.ZERO, Logic.ZERO, Logic.ZERO),
        (Logic.ZERO, Logic.ONE, Logic.ONE),
        (Logic.ONE, Logic.ONE, Logic.ZERO),
        (Logic.ONE, Logic.X, Logic.X),  # X poisons XOR
        (Logic.ZERO, Logic.X, Logic.X),
    ])
    def test_xor(self, a, b, expected):
        assert (a ^ b) is expected

    def test_de_morgan_on_known_values(self):
        for a in (Logic.ZERO, Logic.ONE):
            for b in (Logic.ZERO, Logic.ONE):
                assert ~(a & b) is (~a | ~b)
                assert ~(a | b) is (~a & ~b)

    def test_is_known(self):
        assert Logic.ZERO.is_known and Logic.ONE.is_known
        assert not Logic.X.is_known

    def test_str(self):
        assert str(Logic.ZERO) == "0"
        assert str(Logic.ONE) == "1"
        assert str(Logic.X) == "X"


class TestConversions:
    def test_from_bool(self):
        assert Logic.from_bool(True) is Logic.ONE
        assert Logic.from_bool(False) is Logic.ZERO

    def test_from_voltage_thresholds(self):
        assert Logic.from_voltage(0.5, 5.0) is Logic.ZERO
        assert Logic.from_voltage(4.5, 5.0) is Logic.ONE
        assert Logic.from_voltage(2.5, 5.0) is Logic.X

    def test_from_voltage_custom_margins(self):
        assert Logic.from_voltage(2.0, 5.0, low_frac=0.45,
                                  high_frac=0.55) is Logic.ZERO

    def test_to_voltage(self):
        assert Logic.ZERO.to_voltage(5.0) == 0.0
        assert Logic.ONE.to_voltage(5.0) == 5.0
        assert Logic.X.to_voltage(5.0) == 2.5

    def test_round_trip(self):
        for level in (Logic.ZERO, Logic.ONE):
            assert Logic.from_voltage(level.to_voltage(5.0), 5.0) is level


class TestStrength:
    def test_ordering(self):
        assert Strength.NONE < Strength.CHARGED
        assert Strength.CHARGED < Strength.DEPLETION
        assert Strength.DEPLETION < Strength.DRIVEN

    def test_min_used_for_decay(self):
        assert min(Strength.DRIVEN, Strength.DEPLETION) is Strength.DEPLETION


class TestResolve:
    def test_agreeing_signals(self):
        assert resolve([Logic.ONE, Logic.ONE]) is Logic.ONE

    def test_conflict_is_x(self):
        assert resolve([Logic.ONE, Logic.ZERO]) is Logic.X

    def test_empty_is_x(self):
        assert resolve([]) is Logic.X

    def test_single(self):
        assert resolve([Logic.ZERO]) is Logic.ZERO
