"""End-to-end integration tests across all subsystems.

These are the "does the whole reproduction hang together" checks: netlist
file → switch-level states → timing analysis → analog cross-validation.
"""

import pytest

from repro import (
    CMOS3,
    NMOS4,
    LumpedRCModel,
    SlopeModel,
    Transition,
    analyze,
    delay_between,
    simulate,
)
from repro.analog import sources
from repro.circuits import inverter_chain, pass_chain
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.netlist import sim_format
from repro.switchlevel import Logic, SwitchSimulator


class TestSimFileToTiming:
    SIM_TEXT = """\
| two-inverter chain, nmos4
i in
e in gnd n1 2 8
d n1 n1 vdd 8 2
e n1 gnd out 2 8
d out out vdd 8 2
C out gnd 50
"""

    def test_parse_simulate_analyze(self):
        net = sim_format.loads(self.SIM_TEXT, NMOS4)
        # Switch-level functional check.
        sim = SwitchSimulator(net)
        assert sim.run(**{"in": 1})["out"] is Logic.ONE
        # Timing analysis on the parsed netlist.
        result = analyze(net, {"in": 0.0})
        assert result.arrival("out", Transition.RISE).time > 0
        # Analog simulation of the same object.
        analog = simulate(net, {"in": sources.step_up(5.0, at=1e-9)},
                          t_stop=80e-9, steps=1500)
        assert analog.waveform("out").final_value() > 4.0


class TestModelVersusAnalog:
    def test_slope_model_tracks_reference_cmos(self, cmos_char):
        """The headline claim on a fresh circuit (not a fixture)."""
        net = inverter_chain(cmos_char, 3, fanout=2)
        t_in = 0.5e-9
        analog = simulate(
            net, {"in": sources.edge(5.0, rising=True, at=2e-9,
                                     transition_time=t_in)},
            t_stop=40e-9, steps=2500)
        reference = delay_between(analog.waveform("in"),
                                  analog.waveform("out"), 5.0,
                                  Transition.RISE, Transition.FALL)
        result = analyze(net, {"in": InputSpec(arrival_rise=0.0,
                                               arrival_fall=None,
                                               slope=t_in)},
                         model=SlopeModel())
        estimate = result.arrival("out", Transition.FALL).time
        assert estimate == pytest.approx(reference, rel=0.15)

    def test_lumped_model_worse_than_slope(self, cmos_char):
        net = inverter_chain(cmos_char, 4)
        analog = simulate(
            net, {"in": sources.edge(5.0, rising=True, at=2e-9,
                                     transition_time=0.3e-9)},
            t_stop=40e-9, steps=2500)
        reference = delay_between(analog.waveform("in"),
                                  analog.waveform("out"), 5.0,
                                  Transition.RISE, Transition.RISE)
        spec = {"in": InputSpec(arrival_rise=0.0, arrival_fall=None,
                                slope=0.3e-9)}
        slope_err = abs(analyze(net, spec, model=SlopeModel())
                        .arrival("out", Transition.RISE).time - reference)
        lumped_err = abs(analyze(net, spec, model=LumpedRCModel())
                         .arrival("out", Transition.RISE).time - reference)
        assert slope_err < lumped_err

    def test_pass_chain_nmos(self, nmos_char):
        net = pass_chain(nmos_char, 3)
        analog = simulate(
            net, {"in": sources.edge(5.0, rising=False, at=2e-9,
                                     transition_time=1e-9),
                  "en": 5.0},
            t_stop=300e-9, steps=3000)
        reference = delay_between(analog.waveform("in"),
                                  analog.waveform("out"), 5.0,
                                  Transition.FALL, Transition.RISE)
        result = analyze(
            net,
            {"in": InputSpec(arrival_rise=None, arrival_fall=0.0,
                             slope=1e-9),
             "en": InputSpec(arrival_rise=None, arrival_fall=None)},
            model=SlopeModel())
        estimate = result.arrival("out", Transition.RISE).time
        assert estimate == pytest.approx(reference, rel=0.35)


class TestSwitchStatesFeedTiming:
    def test_simulator_states_prune_analysis(self):
        from repro.circuits import nand_gate
        net = nand_gate(CMOS3, 2)
        sim = SwitchSimulator(net)
        pre = dict(sim.run(a0=0, a1=1))
        post = dict(sim.run(a0=1))
        result = analyze(
            net,
            {"a0": InputSpec(arrival_rise=0.0, arrival_fall=None),
             "a1": InputSpec(arrival_rise=None, arrival_fall=None)},
            states=post, initial_states=pre)
        assert result.arrival("out", Transition.FALL).time > 0
        assert not result.has_arrival("out", Transition.RISE)


class TestRoundTripConsistency:
    def test_sim_round_trip_preserves_timing(self, cmos_char):
        net = inverter_chain(cmos_char, 3)
        text = sim_format.dumps(net)
        clone = sim_format.loads(text, cmos_char)
        clone.mark_input("in")
        original = analyze(net, {"in": 0.0}).arrival(
            "out", Transition.RISE).time
        reparsed = analyze(clone, {"in": 0.0}).arrival(
            "out", Transition.RISE).time
        assert reparsed == pytest.approx(original, rel=1e-6)
