"""Tests for nodes, elements and the Network container."""

import pytest

from repro.errors import NetlistError
from repro.netlist import GND, VDD, Network, NodeRole, canonical_name
from repro.netlist.transistor import Capacitor, Resistor, Transistor
from repro.tech import CMOS3, NMOS4, DeviceKind


class TestCanonicalNames:
    @pytest.mark.parametrize("alias", ["vdd", "VDD", "Vcc", "vdd!"])
    def test_power_aliases(self, alias):
        assert canonical_name(alias) == VDD

    @pytest.mark.parametrize("alias", ["gnd", "GND", "vss", "0", "gnd!"])
    def test_ground_aliases(self, alias):
        assert canonical_name(alias) == GND

    def test_signal_names_preserved(self):
        assert canonical_name(" myNode ") == "myNode"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            canonical_name("   ")


class TestTransistorElement:
    def test_channel_and_other_terminal(self):
        t = Transistor("m1", DeviceKind.NMOS_ENH, "g", "s", "d", 4e-6, 2e-6)
        assert t.channel == ("s", "d")
        assert t.other_channel_terminal("s") == "d"
        assert t.other_channel_terminal("d") == "s"

    def test_other_terminal_rejects_stranger(self):
        t = Transistor("m1", DeviceKind.NMOS_ENH, "g", "s", "d", 4e-6, 2e-6)
        with pytest.raises(NetlistError):
            t.other_channel_terminal("g")

    def test_geometry_validated(self):
        with pytest.raises(NetlistError):
            Transistor("m1", DeviceKind.NMOS_ENH, "g", "s", "d", 0.0, 2e-6)

    def test_is_load_detection(self):
        load = Transistor("m1", DeviceKind.NMOS_DEP, "y", "y", "vdd",
                          2e-6, 8e-6)
        assert load.is_load
        switch = Transistor("m2", DeviceKind.NMOS_DEP, "clk", "a", "b",
                            2e-6, 8e-6)
        assert not switch.is_load
        enh = Transistor("m3", DeviceKind.NMOS_ENH, "y", "y", "vdd",
                         2e-6, 2e-6)
        assert not enh.is_load

    def test_shape_factor(self):
        t = Transistor("m1", DeviceKind.NMOS_ENH, "g", "s", "d", 8e-6, 2e-6)
        assert t.shape_factor() == pytest.approx(4.0)

    def test_resistor_validation(self):
        with pytest.raises(NetlistError):
            Resistor("r1", "a", "b", 0.0)

    def test_capacitor_validation(self):
        with pytest.raises(NetlistError):
            Capacitor("c1", "a", "b", -1e-15)


class TestNetworkConstruction:
    def test_rails_exist_from_start(self):
        net = Network(CMOS3)
        assert net.has_node(VDD) and net.has_node(GND)
        assert net.node(VDD).role is NodeRole.POWER
        assert net.node(GND).role is NodeRole.GROUND

    def test_add_node_idempotent_accumulates_cap(self):
        net = Network(CMOS3)
        net.add_node("x", capacitance=1e-15)
        net.add_node("x", capacitance=2e-15)
        assert net.node("x").capacitance == pytest.approx(3e-15)

    def test_unknown_node_raises(self):
        net = Network(CMOS3)
        with pytest.raises(NetlistError):
            net.node("nope")

    def test_add_transistor_creates_nodes(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        assert net.has_node("a") and net.has_node("y")

    def test_add_transistor_default_geometry(self):
        net = Network(CMOS3)
        t = net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        assert t.width == CMOS3.default_width
        assert t.length == CMOS3.default_length

    def test_add_transistor_wrong_kind_for_tech(self):
        net = Network(CMOS3)
        with pytest.raises(NetlistError):
            net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd")

    def test_duplicate_transistor_name(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y", name="m1")
        with pytest.raises(NetlistError):
            net.add_transistor(DeviceKind.NMOS_ENH, "b", "gnd", "z",
                               name="m1")

    def test_source_equals_drain_rejected(self):
        net = Network(CMOS3)
        with pytest.raises(NetlistError):
            net.add_transistor(DeviceKind.NMOS_ENH, "a", "y", "y")

    def test_mark_input(self):
        net = Network(CMOS3)
        net.add_node("a")
        net.mark_input("a")
        assert net.node("a").role is NodeRole.INPUT
        assert [n.name for n in net.inputs()] == ["a"]

    def test_mark_supply_as_input_rejected(self):
        net = Network(CMOS3)
        with pytest.raises(NetlistError):
            net.mark_input("vdd")

    def test_resistor_self_loop_rejected(self):
        net = Network(CMOS3)
        with pytest.raises(NetlistError):
            net.add_resistor("a", "a", 1e3)


class TestCapacitorFolding:
    def test_grounded_cap_folds_onto_node(self):
        net = Network(CMOS3)
        result = net.add_capacitor("y", "gnd", 10e-15)
        assert result is None
        assert net.node("y").capacitance == pytest.approx(10e-15)
        assert net.capacitors == []

    def test_vdd_cap_folds_too(self):
        net = Network(CMOS3)
        net.add_capacitor("vdd", "y", 5e-15)
        assert net.node("y").capacitance == pytest.approx(5e-15)

    def test_floating_cap_kept(self):
        net = Network(CMOS3)
        cap = net.add_capacitor("a", "b", 10e-15)
        assert cap is not None
        assert len(net.capacitors) == 1

    def test_rail_to_rail_cap_rejected(self):
        net = Network(CMOS3)
        with pytest.raises(NetlistError):
            net.add_capacitor("vdd", "gnd", 1e-15)

    def test_non_positive_cap_rejected(self):
        net = Network(CMOS3)
        with pytest.raises(NetlistError):
            net.add_capacitor("a", "gnd", 0.0)


class TestConnectivityQueries:
    @pytest.fixture
    def inverter(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y", name="mn")
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y", name="mp")
        return net

    def test_transistors_gated_by(self, inverter):
        names = {t.name for t in inverter.transistors_gated_by("a")}
        assert names == {"mn", "mp"}

    def test_transistors_touching(self, inverter):
        names = {t.name for t in inverter.transistors_touching("y")}
        assert names == {"mn", "mp"}
        assert inverter.transistors_touching("a") == []

    def test_channel_neighbors(self, inverter):
        neighbors = dict(
            (t.name, other) for other, t in inverter.channel_neighbors("y"))
        assert neighbors == {"mn": GND, "mp": VDD}

    def test_conduction_edges(self, inverter):
        edges = list(inverter.conduction_edges())
        assert len(edges) == 2

    def test_externally_driven(self, inverter):
        inverter.mark_input("a")
        assert set(inverter.externally_driven()) == {VDD, GND, "a"}


class TestNodeCapacitance:
    def test_includes_gate_diffusion_and_explicit(self):
        net = Network(CMOS3)
        driver = net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                                    width=6e-6, length=2e-6)
        loadgate = net.add_transistor(DeviceKind.NMOS_ENH, "y", "gnd", "z",
                                      width=6e-6, length=2e-6)
        net.add_capacitor("y", "gnd", 10e-15)
        params = CMOS3.params(DeviceKind.NMOS_ENH)
        expected = (10e-15
                    + params.gate_capacitance(6e-6, 2e-6)  # gate of loadgate
                    + params.diffusion_capacitance(6e-6))  # drain of driver
        assert net.node_capacitance("y") == pytest.approx(expected)

    def test_bare_node_zero(self):
        net = Network(CMOS3)
        net.add_node("x")
        assert net.node_capacitance("x") == 0.0


class TestMerge:
    def test_merge_with_prefix(self):
        a = Network(CMOS3, name="a")
        a.add_transistor(DeviceKind.NMOS_ENH, "in", "gnd", "out", name="m1")
        a.mark_input("in")
        b = Network(CMOS3, name="b")
        mapping = b.merge_from(a, prefix="u1_")
        assert mapping["out"] == "u1_out"
        assert mapping[VDD] == VDD
        assert b.has_node("u1_out")
        assert b.transistor("u1_m1").gate == "u1_in"
        assert b.node("u1_in").role is NodeRole.INPUT

    def test_merge_requires_same_tech(self):
        a = Network(CMOS3)
        b = Network(NMOS4)
        with pytest.raises(NetlistError):
            b.merge_from(a)

    def test_merge_preserves_floating_caps(self):
        a = Network(NMOS4)
        a.add_capacitor("x", "y", 3e-15)
        b = Network(NMOS4)
        b.merge_from(a, prefix="p_")
        assert len(b.capacitors) == 1
        cap = b.capacitors[0]
        assert {cap.node_a, cap.node_b} == {"p_x", "p_y"}

    def test_summary_counts(self):
        net = Network(CMOS3, name="demo")
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        text = net.summary()
        assert "demo" in text and "1 transistors" in text
