"""Tests for the batch scenario-sweep subsystem (repro.batch).

Vector sources (explicit / file / cartesian / random), the shared-
analyzer sweep engine and its equivalence to fresh analyzers, the
per-batch perf aggregation, and the sweep reports.
"""

import pytest

from repro.batch import (
    CartesianSweep,
    ExplicitVectors,
    RandomVectors,
    Vector,
    format_sweep_profile,
    format_sweep_summary,
    load_vector_file,
    parse_vector_line,
    run_scenarios,
    run_sweep,
)
from repro.batch.vectors import parse_timing_token, with_default_slope
from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.errors import SweepError
from repro.perf import BatchPerf, PerfCounters
from repro.tech import CMOS3


class TestVectorParsing:
    def test_token_both_edges(self):
        name, spec = parse_timing_token("a=2n")
        assert name == "a"
        assert spec.arrival_rise == pytest.approx(2e-9)
        assert spec.arrival_fall == pytest.approx(2e-9)

    def test_token_static(self):
        _, spec = parse_timing_token("en=-")
        assert spec.arrival_rise is None and spec.arrival_fall is None

    def test_token_errors(self):
        with pytest.raises(SweepError):
            parse_timing_token("nosign")
        with pytest.raises(SweepError):
            parse_timing_token("a=1n:sideways")
        with pytest.raises(SweepError):
            parse_timing_token("a=wat")
        with pytest.raises(SweepError):
            parse_timing_token("=1n")

    def test_default_slope_applied_to_edges_only(self):
        spec = with_default_slope(InputSpec(arrival_rise=0.0,
                                            arrival_fall=0.0), 1e-9)
        assert spec.slope == pytest.approx(1e-9)
        static = with_default_slope(
            InputSpec(arrival_rise=None, arrival_fall=None), 1e-9)
        assert static.slope == 0.0

    def test_line_with_label(self):
        vector = parse_vector_line("@fast a=0 b=100p", 3)
        assert vector.label == "fast"
        assert vector.inputs["b"].arrival_rise == pytest.approx(100e-12)

    def test_line_auto_label_and_duplicates(self):
        assert parse_vector_line("a=0", 7).label == "v7"
        with pytest.raises(SweepError):
            parse_vector_line("a=0 a=1n", 0)
        with pytest.raises(SweepError):
            parse_vector_line("@only-label", 0)

    def test_token_two_edge_form(self):
        _, spec = parse_timing_token("a=100p~300p")
        assert spec.arrival_rise == pytest.approx(100e-12)
        assert spec.arrival_fall == pytest.approx(300e-12)
        _, rise_only = parse_timing_token("a=100p~-")
        assert rise_only.arrival_rise == pytest.approx(100e-12)
        assert rise_only.arrival_fall is None
        _, fall_only = parse_timing_token("a=-~300p")
        assert fall_only.arrival_rise is None
        assert fall_only.arrival_fall == pytest.approx(300e-12)

    def test_token_slope_suffix(self):
        _, spec = parse_timing_token("a=2n/200p")
        assert spec.arrival_rise == pytest.approx(2e-9)
        assert spec.slope == pytest.approx(200e-12)
        _, two_edge = parse_timing_token("a=0~1n/0.5n")
        assert two_edge.slope == pytest.approx(0.5e-9)
        with pytest.raises(SweepError, match="slope"):
            parse_timing_token("a=-/200p")
        with pytest.raises(SweepError, match="bad slope"):
            parse_timing_token("a=1n/wat")

    def test_format_token_round_trips(self):
        from repro.batch import format_timing_token
        specs = [
            InputSpec(arrival_rise=1.3e-10, arrival_fall=1.3e-10,
                      slope=2e-10),
            InputSpec(arrival_rise=1e-10, arrival_fall=7.05e-10),
            InputSpec(arrival_rise=2.5e-10, arrival_fall=None,
                      slope=5e-10),
            InputSpec(arrival_rise=None, arrival_fall=3e-10),
            InputSpec(arrival_rise=None, arrival_fall=None),
        ]
        for spec in specs:
            name, parsed = parse_timing_token(
                format_timing_token("n1", spec))
            assert name == "n1"
            # repr-based formatting makes the round trip bit-exact
            assert parsed.arrival_rise == spec.arrival_rise
            assert parsed.arrival_fall == spec.arrival_fall
            assert parsed.slope == spec.slope


class TestVectorFile:
    def test_load_and_labels(self, tmp_path):
        path = tmp_path / "vecs.txt"
        path.write_text(
            "# comment\n"
            "@first a=0 b=200p\n"
            "\n"
            "a=100p b=0   # trailing comment\n")
        source = load_vector_file(str(path))
        vectors = list(source)
        assert [v.label for v in vectors] == ["first", "v1"]
        assert vectors[1].inputs["a"].arrival_fall == pytest.approx(100e-12)

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "vecs.txt"
        path.write_text("a=0\nb=oops\n")
        with pytest.raises(SweepError) as excinfo:
            load_vector_file(str(path))
        assert excinfo.value.line == 2
        assert "vecs.txt" in str(excinfo.value)

    def test_duplicate_labels_rejected(self, tmp_path):
        path = tmp_path / "vecs.txt"
        path.write_text("@x a=0\n@x a=1n\n")
        with pytest.raises(SweepError):
            load_vector_file(str(path))

    def test_duplicate_labels_name_both_indices(self, tmp_path):
        """ISSUE 8 S2: the error must say which two vectors collide —
        index and line of both sides, not just the label."""
        path = tmp_path / "vecs.txt"
        path.write_text("# header\n"
                        "@a x=0\n"
                        "@dup x=1n\n"
                        "@b x=0\n"
                        "@dup x=2n\n")
        with pytest.raises(SweepError) as excinfo:
            load_vector_file(str(path))
        message = str(excinfo.value)
        assert "duplicate vector label 'dup'" in message
        # colliding vector indices (0-based): vector 3 vs vector 1
        assert "vector 3" in message and "vector 1" in message
        # and the file lines of both occurrences
        assert "line 5" in message and "line 3" in message
        assert excinfo.value.line == 5

    def test_dump_vector_file_round_trips(self, tmp_path):
        from repro.batch import dump_vector_file
        vectors = [
            Vector(label="first",
                   inputs={"a": InputSpec(arrival_rise=1.3e-10,
                                          arrival_fall=4.7e-10,
                                          slope=2e-10),
                           "b": InputSpec(arrival_rise=None,
                                          arrival_fall=None)}),
            Vector(label="second",
                   inputs={"a": InputSpec(arrival_rise=0.0,
                                          arrival_fall=0.0),
                           "b": InputSpec(arrival_rise=None,
                                          arrival_fall=9e-10,
                                          slope=1e-10)}),
        ]
        path = tmp_path / "out.vec"
        dump_vector_file(vectors, str(path), header="round trip")
        loaded = list(load_vector_file(str(path)))
        assert [v.label for v in loaded] == ["first", "second"]
        for original, parsed in zip(vectors, loaded):
            assert set(parsed.inputs) == set(original.inputs)
            for name, spec in original.inputs.items():
                other = parsed.inputs[name]
                assert other.arrival_rise == spec.arrival_rise, name
                assert other.arrival_fall == spec.arrival_fall, name
                assert other.slope == spec.slope, name

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "vecs.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(SweepError):
            load_vector_file(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(SweepError):
            load_vector_file(str(tmp_path / "absent.txt"))


class TestCartesianSweep:
    def test_row_major_product(self):
        sweep = CartesianSweep(base={"c": 0.0},
                               axes={"a": [0.0, 1e-9], "b": [0.0, 2e-9]})
        vectors = list(sweep)
        assert len(vectors) == 4
        assert vectors[0].inputs["a"].arrival_rise == 0.0
        assert vectors[0].inputs["c"].arrival_rise == 0.0
        # last vector has both axes at their last value
        assert vectors[-1].inputs["a"].arrival_rise == pytest.approx(1e-9)
        assert vectors[-1].inputs["b"].arrival_rise == pytest.approx(2e-9)
        assert len({v.label for v in vectors}) == 4

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError):
            list(CartesianSweep(base={}, axes={"a": []}))
        with pytest.raises(SweepError):
            list(CartesianSweep(base={}, axes={}))


class TestRandomVectors:
    def test_seed_determinism(self):
        a = list(RandomVectors(["x", "y"], count=5, seed=42, span=1e-9))
        b = list(RandomVectors(["x", "y"], count=5, seed=42, span=1e-9))
        assert a == b
        c = list(RandomVectors(["x", "y"], count=5, seed=43, span=1e-9))
        assert a != c

    def test_span_and_slope_respected(self):
        vectors = list(RandomVectors(["x"], count=20, seed=0, span=1e-9,
                                     slope=0.2e-9))
        for vector in vectors:
            spec = vector.inputs["x"]
            assert 0.0 <= spec.arrival_rise <= 1e-9
            assert spec.arrival_rise == spec.arrival_fall
            assert spec.slope == pytest.approx(0.2e-9)

    def test_bad_parameters(self):
        with pytest.raises(SweepError):
            list(RandomVectors(["x"], count=0))
        with pytest.raises(SweepError):
            list(RandomVectors(["x"], count=1, span=-1.0))


@pytest.fixture(scope="module")
def rca4():
    return ripple_carry_adder(CMOS3, 4)


@pytest.fixture(scope="module")
def rca4_vectors():
    return list(RandomVectors(input_names=adder_input_names(4), count=6,
                              seed=7, span=1e-9, slope=0.3e-9))


class TestRunSweep:
    def test_matches_fresh_analyzers(self, rca4, rca4_vectors):
        sweep = run_sweep(rca4, rca4_vectors)
        assert len(sweep) == len(rca4_vectors)
        for vector, outcome in zip(rca4_vectors, sweep.outcomes):
            fresh = TimingAnalyzer(rca4).analyze(vector.inputs)
            assert set(outcome.result.arrivals) == set(fresh.arrivals)
            for event, arrival in outcome.result.arrivals.items():
                expected = fresh.arrivals[event]
                assert arrival.time == expected.time, event
                assert arrival.slope == expected.slope, event
                assert arrival.cause == expected.cause, event

    def test_cache_sharing_cuts_model_evals(self, rca4, rca4_vectors):
        sweep = run_sweep(rca4, rca4_vectors)
        per_scenario = [perf.get("model_evals")
                        for _, perf in sweep.batch_perf.scenarios]
        # the first scenario pays the setup; later ones ride the memo
        assert per_scenario[0] > 0
        assert sum(per_scenario[1:]) < per_scenario[0]
        assert sweep.batch_perf.cache_hit_rate > 0.5

    def test_stats_and_worst(self, rca4, rca4_vectors):
        sweep = run_sweep(rca4, rca4_vectors)
        stats = sweep.arrival_stats()
        assert stats.scenarios == len(rca4_vectors)
        assert stats.minimum <= stats.mean <= stats.maximum
        worst = sweep.worst()
        assert worst.worst_time == stats.maximum
        assert sweep.outcome(worst.label) is worst
        with pytest.raises(SweepError):
            sweep.outcome("no-such-label")

    def test_watch_restricts_ranking(self, rca4, rca4_vectors):
        sweep = run_sweep(rca4, rca4_vectors, watch=["s0"])
        for outcome in sweep.outcomes:
            assert outcome.worst_event.node == "s0"

    def test_raw_mapping_convenience(self, rca4):
        specs = [{n: 0.0 for n in adder_input_names(4)},
                 {n: 1e-9 for n in adder_input_names(4)}]
        sweep = run_scenarios(rca4, specs)
        assert [o.label for o in sweep.outcomes] == ["v0", "v1"]

    def test_empty_source_rejected(self, rca4):
        with pytest.raises(SweepError):
            run_sweep(rca4, ExplicitVectors([]))

    def test_warm_analyzer_can_be_reused(self, rca4, rca4_vectors):
        analyzer = TimingAnalyzer(rca4)
        first = run_sweep(rca4, rca4_vectors, analyzer=analyzer)
        again = run_sweep(rca4, rca4_vectors, analyzer=analyzer)
        # second sweep of the same vectors is pure cache hits
        assert again.batch_perf.total.get("model_evals") == 0
        for a, b in zip(first.outcomes, again.outcomes):
            assert a.worst_time == b.worst_time


class TestBatchPerf:
    def _batch(self):
        batch = BatchPerf()
        first = PerfCounters()
        first.incr("model_evals", 10)
        first.incr("model_cache_misses", 10)
        batch.add("a", first)
        second = PerfCounters()
        second.incr("model_cache_hits", 10)
        batch.add("b", second)
        return batch

    def test_cross_scenario_hit_rate(self):
        batch = self._batch()
        assert batch.cache_hit_rate == pytest.approx(0.5)
        assert batch.evals_per_scenario() == pytest.approx(5.0)
        assert len(batch) == 2

    def test_snapshots_are_isolated(self):
        batch = BatchPerf()
        live = PerfCounters()
        live.incr("model_evals", 1)
        batch.add("a", live)
        live.incr("model_evals", 99)
        assert batch.total.get("model_evals") == 1

    def test_format_table_shape(self):
        text = self._batch().format_table("batch perf")
        assert "batch perf" in text
        assert "total (2)" in text
        assert "model evals per scenario" in text


class TestSweepReports:
    def test_summary_contents(self, rca4, rca4_vectors):
        sweep = run_sweep(rca4, rca4_vectors, watch=["cout"])
        text = format_sweep_summary(sweep, count=3)
        assert "sweep summary" in text
        assert "worst vector" in text
        assert "critical path to" in text
        assert "more scenario(s)" in text  # 6 vectors, table capped at 3
        assert sweep.worst().label in text

    def test_summary_without_critical_path(self, rca4, rca4_vectors):
        sweep = run_sweep(rca4, rca4_vectors)
        text = format_sweep_summary(sweep, critical_path=False)
        assert "critical path to" not in text

    def test_profile_contents(self, rca4, rca4_vectors):
        sweep = run_sweep(rca4, rca4_vectors)
        text = format_sweep_profile(sweep)
        assert "shared analyzer" in text
        for vector in rca4_vectors:
            assert vector.label in text


class TestAnalyzeMany:
    def test_counts_batch_scenarios(self, rca4):
        analyzer = TimingAnalyzer(rca4)
        specs = [{n: 0.0 for n in adder_input_names(4)},
                 {n: 1e-9 for n in adder_input_names(4)}]
        results = analyzer.analyze_many(specs)
        assert len(results) == 2
        assert analyzer.perf.get("batch_scenarios") == 2
        assert analyzer.perf.elapsed("analyze_batch") > 0

    def test_reentrancy_guard_and_reset(self, rca4):
        from repro.errors import TimingError

        analyzer = TimingAnalyzer(rca4)
        inputs = {n: 0.0 for n in adder_input_names(4)}
        analyzer._run_perf = PerfCounters()  # simulate a corrupted run
        with pytest.raises(TimingError):
            analyzer.analyze(inputs)
        analyzer.reset_run_state()
        assert analyzer.analyze(inputs).arrivals

    def test_vector_dataclass_equality(self):
        a = Vector("x", {"a": InputSpec()})
        b = Vector("x", {"a": InputSpec()})
        assert a == b
