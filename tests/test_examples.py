"""Smoke tests: every shipped example must run end to end.

These import each example module and call its ``main()`` (with small
arguments where supported), asserting on the key lines of its output —
so the examples directory can never silently rot.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_main(name, argv, capsys):
    module = load_example(name)
    old_argv = sys.argv
    sys.argv = [f"{name}.py"] + argv
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_main("quickstart", [], capsys)
        assert "model estimates" in out
        assert "critical path to out" in out
        assert "reference" in out

    def test_switch_level_sim(self, capsys):
        out = run_main("switch_level_sim", [], capsys)
        assert "precharge phase (phi=1):         bus=1" in out
        assert "driver 0 discharges the bus:     bus=0" in out
        assert "after shifting in" in out

    def test_timing_report_adder(self, capsys):
        out = run_main("timing_report_adder", ["2"], capsys)
        assert "worst arrivals" in out
        assert "critical path" in out
        assert "carry-chain arrivals" in out

    def test_clocked_pipeline(self, capsys):
        out = run_main("clocked_pipeline", [], capsys)
        assert "setup checks" in out
        assert "0 violation(s)" in out
        assert "minimum passing period" in out
        assert "no hazards" in out

    def test_characterize_tech(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        out = run_main("characterize_tech", ["cmos", str(out_file)], capsys)
        assert "slope tables" in out
        assert "reload check" in out
        assert out_file.exists()

    @pytest.mark.slow
    def test_compare_models(self, capsys):
        out = run_main("compare_models", ["cmos"], capsys)
        assert "CMOS test circuits" in out
        assert "error summary" in out
        assert "slope" in out

    def test_compare_models_rejects_bad_argument(self, capsys):
        module = load_example("compare_models")
        old_argv = sys.argv
        sys.argv = ["compare_models.py", "bipolar"]
        try:
            with pytest.raises(SystemExit):
                module.main()
        finally:
            sys.argv = old_argv
