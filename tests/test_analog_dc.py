"""Tests for DC operating-point analysis."""

import pytest

from repro.analog import operating_point
from repro.circuits import Gates, nand_gate
from repro.errors import SimulationError
from repro.netlist import Network
from repro.tech import CMOS3, NMOS4, DeviceKind


def cmos_inverter(load=50e-15):
    net = Network(CMOS3)
    net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                       width=6e-6, length=2e-6)
    net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y",
                       width=12e-6, length=2e-6)
    if load:
        net.add_capacitor("y", "gnd", load)
    net.mark_input("a")
    return net


def nmos_inverter():
    net = Network(NMOS4)
    net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                       width=8e-6, length=2e-6)
    net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd",
                       width=2e-6, length=8e-6)
    net.mark_input("a")
    return net


class TestResistiveNetworks:
    def test_voltage_divider_exact(self):
        net = Network(CMOS3)
        net.add_resistor("vdd", "mid", 1e3)
        net.add_resistor("mid", "gnd", 3e3)
        op = operating_point(net, {})
        assert op["mid"] == pytest.approx(3.75, rel=1e-4)

    def test_three_way_divider(self):
        net = Network(CMOS3)
        net.add_resistor("vdd", "a", 1e3)
        net.add_resistor("a", "b", 1e3)
        net.add_resistor("b", "gnd", 2e3)
        op = operating_point(net, {})
        assert op["a"] == pytest.approx(5.0 * 3 / 4, rel=1e-4)
        assert op["b"] == pytest.approx(5.0 * 2 / 4, rel=1e-4)

    def test_floating_node_pulled_by_gmin(self):
        net = Network(CMOS3)
        net.add_node("lonely")
        net.add_capacitor("lonely", "gnd", 1e-15)
        op = operating_point(net, {})
        assert op["lonely"] == pytest.approx(0.0, abs=1e-6)

    def test_driven_input_forced(self):
        net = Network(CMOS3)
        net.add_resistor("a", "y", 1e3)
        net.add_resistor("y", "gnd", 1e3)
        net.mark_input("a")
        op = operating_point(net, {"a": 4.0})
        assert op["a"] == 4.0
        assert op["y"] == pytest.approx(2.0, rel=1e-4)


class TestCMOSInverter:
    def test_rail_to_rail(self):
        net = cmos_inverter()
        assert operating_point(net, {"a": 0.0})["y"] == pytest.approx(
            5.0, abs=1e-3)
        assert operating_point(net, {"a": 5.0})["y"] == pytest.approx(
            0.0, abs=1e-3)

    def test_switching_threshold_region(self):
        """Near the inverter threshold the output is between the rails."""
        net = cmos_inverter()
        mid = operating_point(net, {"a": 2.2})["y"]
        assert 0.5 < mid < 4.5

    def test_vtc_monotone(self):
        net = cmos_inverter()
        previous = 6.0
        for vin in (0.0, 1.0, 2.0, 2.5, 3.0, 4.0, 5.0):
            vout = operating_point(net, {"a": vin})["y"]
            assert vout <= previous + 1e-6
            previous = vout


class TestNMOSInverter:
    def test_vol_small_but_nonzero(self):
        """Ratioed logic: the low level is a fight, not a rail."""
        vol = operating_point(nmos_inverter(), {"a": 5.0})["y"]
        assert 0.0 < vol < 0.5

    def test_voh_full_rail(self):
        voh = operating_point(nmos_inverter(), {"a": 0.0})["y"]
        assert voh == pytest.approx(5.0, abs=1e-2)

    def test_nand_low_level_worse_with_stack(self):
        """Two series pulldowns fight the load less effectively than a
        single pulldown of the same W/L would."""
        single = operating_point(nmos_inverter(), {"a": 5.0})["y"]
        nand = nand_gate(NMOS4, 2)
        stacked = operating_point(nand, {"a0": 5.0, "a1": 5.0})["out"]
        # Same effective strength by sizing discipline: comparable VOL.
        assert stacked < 0.6
        assert stacked == pytest.approx(single, abs=0.4)


class TestCMOSGates:
    def test_nand_truth_levels(self):
        net = nand_gate(CMOS3, 2)
        cases = {(0, 0): 5.0, (0, 1): 5.0, (1, 0): 5.0, (1, 1): 0.0}
        for (a, b), expected in cases.items():
            op = operating_point(net, {"a0": 5.0 * a, "a1": 5.0 * b})
            assert op["out"] == pytest.approx(expected, abs=0.05), (a, b)


class TestErrors:
    def test_undriven_input_rejected(self):
        net = cmos_inverter()
        with pytest.raises(SimulationError):
            operating_point(net, {})

    def test_drive_on_rail_rejected(self):
        net = cmos_inverter()
        with pytest.raises(SimulationError):
            operating_point(net, {"a": 0.0, "vdd": 5.0})

    def test_initial_guess_accepted(self):
        net = cmos_inverter()
        op = operating_point(net, {"a": 0.0}, initial_guess={"y": 5.0})
        assert op["y"] == pytest.approx(5.0, abs=1e-3)
