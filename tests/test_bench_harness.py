"""Tests for the benchmark harness (scenario running, summaries, tables)."""

import pytest

from repro.analog import sources
from repro.bench import (
    ComparisonRow,
    ModelEstimate,
    Scenario,
    cmos_scenarios,
    format_comparison_table,
    format_error_summary,
    format_runtime_table,
    format_series,
    nmos_scenarios,
    run_scenario,
    runtime_comparison,
    summarize_errors,
    time_callable,
)
from repro.bench.harness import scenario_states
from repro.circuits import inverter_chain
from repro.core.models import LumpedRCModel
from repro.core.timing import InputSpec
from repro.errors import AnalysisError
from repro.switchlevel import Logic
from repro.tech import Transition


def tiny_scenario(tech, auto_states=True):
    net = inverter_chain(tech, 1, load_cap=60e-15)
    return Scenario(
        name="tiny-inverter",
        network=net,
        drives={"in": sources.edge(tech.vdd, rising=True, at=1e-9,
                                   transition_time=0.3e-9)},
        timing_inputs={"in": InputSpec(arrival_rise=0.0, arrival_fall=None,
                                       slope=0.3e-9)},
        input_node="in",
        input_edge=Transition.RISE,
        output_node="out",
        output_edge=Transition.FALL,
        t_stop=20e-9,
        steps=800,
        auto_states=auto_states,
    )


class TestScenarioExecution:
    def test_run_scenario_produces_estimates(self, cmos_char):
        row = run_scenario(tiny_scenario(cmos_char))
        assert row.reference > 0
        assert {e.model for e in row.estimates} == {
            "lumped-rc", "rc-tree", "slope"}
        for estimate in row.estimates:
            assert estimate.delay > 0

    def test_slope_model_wins_on_inverter(self, cmos_char):
        row = run_scenario(tiny_scenario(cmos_char))
        assert abs(row.estimate("slope").error) < 0.15

    def test_single_model_subset(self, cmos_char):
        row = run_scenario(tiny_scenario(cmos_char),
                           models=[LumpedRCModel()])
        assert len(row.estimates) == 1

    def test_estimate_lookup_raises(self):
        row = ComparisonRow(scenario="x", reference=1.0)
        with pytest.raises(AnalysisError):
            row.estimate("slope")

    def test_scenario_states_computed(self, cmos_char):
        pre, post = scenario_states(tiny_scenario(cmos_char))
        assert pre["out"] is Logic.ONE  # input low before the edge
        assert post["out"] is Logic.ZERO


class TestScenarioCatalogs:
    def test_nmos_catalog_complete(self, nmos_char):
        names = {s.name for s in nmos_scenarios(nmos_char)}
        assert {"inv-chain-4", "pass-chain-8", "bootstrap",
                "bus-discharge"} <= names

    def test_cmos_catalog_complete(self, cmos_char):
        names = {s.name for s in cmos_scenarios(cmos_char)}
        assert {"inv-chain-4", "pass-chain-8", "tgate-mux",
                "bus-discharge"} <= names

    def test_scenarios_reference_real_ports(self, cmos_char):
        for scenario in cmos_scenarios(cmos_char):
            assert scenario.network.has_node(scenario.input_node)
            assert scenario.network.has_node(scenario.output_node)
            for node in scenario.drives:
                assert scenario.network.has_node(node)


class TestSummaries:
    def make_rows(self):
        return [
            ComparisonRow("a", 1.0, [ModelEstimate("m", 1.1, 0.1),
                                     ModelEstimate("n", 2.0, 1.0)]),
            ComparisonRow("b", 2.0, [ModelEstimate("m", 1.8, -0.1),
                                     ModelEstimate("n", 2.2, 0.1)]),
        ]

    def test_summarize_errors(self):
        summaries = {s.model: s for s in summarize_errors(self.make_rows())}
        assert summaries["m"].mean_abs_error == pytest.approx(0.1)
        assert summaries["m"].mean_signed_error == pytest.approx(0.0)
        assert summaries["n"].max_abs_error == pytest.approx(1.0)
        assert summaries["n"].rows == 2

    def test_summarize_empty(self):
        assert summarize_errors([]) == []

    def test_comparison_table_renders(self):
        text = format_comparison_table(self.make_rows(), "demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "+10.0%" in text or "+10.0" in text

    def test_error_summary_renders(self):
        text = format_error_summary(summarize_errors(self.make_rows()),
                                    "errors")
        assert "mean |err|" in text

    def test_series_renders(self):
        text = format_series(["x", "y"], [(1, 2.0), (3, 4.0)], "series")
        assert "series" in text and "1" in text


class TestRuntime:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(100))) > 0

    def test_runtime_comparison_analyzer_only(self, cmos_char):
        net = inverter_chain(cmos_char, 3)
        row = runtime_comparison(net, timing_inputs={"in": 0.0},
                                 simulate_reference=False)
        assert row.transistors == 6
        assert row.analyzer_seconds > 0
        assert row.simulator_seconds is None
        assert row.speedup is None

    def test_runtime_comparison_with_reference(self, cmos_char):
        net = inverter_chain(cmos_char, 2)
        row = runtime_comparison(
            net, timing_inputs={"in": 0.0},
            drives={"in": sources.step_up(cmos_char.vdd, at=1e-9)},
            t_stop=10e-9)
        assert row.speedup is not None and row.speedup > 0

    def test_runtime_table_renders(self, cmos_char):
        net = inverter_chain(cmos_char, 2)
        row = runtime_comparison(net, timing_inputs={"in": 0.0},
                                 simulate_reference=False)
        text = format_runtime_table([row], "runtime")
        assert "(skipped)" in text
