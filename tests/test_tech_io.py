"""Tests for technology save/load."""

import json

import pytest

from repro.errors import TechnologyError
from repro.tech import (
    CMOS3,
    NMOS4,
    load_technology,
    save_technology,
    technologies_equivalent,
    technology_from_dict,
    technology_to_dict,
)


class TestRoundTrip:
    @pytest.mark.parametrize("tech", [CMOS3, NMOS4], ids=["cmos", "nmos"])
    def test_dict_round_trip(self, tech):
        clone = technology_from_dict(technology_to_dict(tech))
        assert technologies_equivalent(tech, clone)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "cmos3.json"
        save_technology(CMOS3, str(path))
        clone = load_technology(str(path))
        assert technologies_equivalent(CMOS3, clone)
        assert clone.vdd == CMOS3.vdd
        assert clone.slope_tables is not None

    def test_characterized_round_trip(self, cmos_char, tmp_path):
        path = tmp_path / "fitted.json"
        save_technology(cmos_char, str(path))
        clone = load_technology(str(path))
        assert technologies_equivalent(cmos_char, clone)
        assert clone.slope_tables.source == "characterized:cmos3"

    def test_loaded_technology_is_usable(self, tmp_path):
        from repro.circuits import inverter_chain
        from repro.core.timing import analyze
        from repro.tech import Transition

        path = tmp_path / "t.json"
        save_technology(CMOS3, str(path))
        tech = load_technology(str(path))
        result = analyze(inverter_chain(tech, 2), {"in": 0.0})
        assert result.arrival("out", Transition.RISE).time > 0

    def test_tables_optional(self, tmp_path):
        import dataclasses
        bare = dataclasses.replace(CMOS3, slope_tables=None)
        path = tmp_path / "bare.json"
        save_technology(bare, str(path))
        clone = load_technology(str(path))
        assert clone.slope_tables is None


class TestErrors:
    def test_bad_version(self):
        data = technology_to_dict(CMOS3)
        data["format"] = 99
        with pytest.raises(TechnologyError):
            technology_from_dict(data)

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(TechnologyError):
            load_technology(str(path))


class TestEquivalence:
    def test_different_techs_not_equivalent(self):
        assert not technologies_equivalent(CMOS3, NMOS4)

    def test_perturbed_parameter_detected(self):
        data = technology_to_dict(CMOS3)
        data["devices"]["e"]["kp"] *= 1.001
        clone = technology_from_dict(data)
        assert not technologies_equivalent(CMOS3, clone)

    def test_perturbed_table_detected(self):
        data = technology_to_dict(CMOS3)
        key = next(iter(data["slope_tables"]["tables"]))
        data["slope_tables"]["tables"][key]["delay_factors"][0] += 0.5
        clone = technology_from_dict(data)
        assert not technologies_equivalent(CMOS3, clone)
