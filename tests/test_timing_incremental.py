"""Regression tests for the incremental event-driven timing engine.

The demand-driven engine must be an *optimization*, not an approximation:
its arrivals — times, slopes, and causal chains — must be bit-identical to
a brute-force reference that re-evaluates every internal node of a stage
on every visit (``incremental=False``).  A second battery checks the
observability layer: the memo cache must actually eliminate model
evaluations on a warm re-analysis.
"""

import pytest

from repro.circuits import (
    adder_input_names,
    decoder,
    pass_chain,
    ripple_carry_adder,
)
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.errors import TimingError
from repro.switchlevel import SwitchSimulator
from repro.tech import CMOS3, Transition


def _fixtures():
    rca = ripple_carry_adder(CMOS3, 8)
    dec = decoder(CMOS3, 3)
    chain = pass_chain(CMOS3, 6)
    return [
        ("rca8", rca, {n: 0.0 for n in adder_input_names(8)}),
        ("decoder3", dec, {f"a{i}": 0.0 for i in range(3)}),
        ("passchain6", chain,
         {"in": InputSpec(arrival_rise=0.0, arrival_fall=0.0, slope=0.3e-9),
          "en": InputSpec(arrival_rise=None, arrival_fall=None)}),
    ]


class TestIncrementalIdentity:
    """Incremental vs brute-force full re-evaluation: bit-identical."""

    @pytest.mark.parametrize("name,network,inputs", _fixtures(),
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_bit_identical_arrivals(self, name, network, inputs):
        fast = TimingAnalyzer(network, incremental=True).analyze(inputs)
        reference = TimingAnalyzer(network, incremental=False).analyze(inputs)

        assert set(fast.arrivals) == set(reference.arrivals)
        for event, arrival in fast.arrivals.items():
            expected = reference.arrivals[event]
            assert arrival.time == expected.time, event
            assert arrival.slope == expected.slope, event
            assert arrival.cause == expected.cause, event

    @pytest.mark.parametrize("name,network,inputs", _fixtures(),
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_identical_causal_chains(self, name, network, inputs):
        fast = TimingAnalyzer(network, incremental=True).analyze(inputs)
        reference = TimingAnalyzer(network, incremental=False).analyze(inputs)
        worst_event, _ = fast.worst()
        chain_fast = fast.critical_path(worst_event.node,
                                        worst_event.transition)
        chain_ref = reference.critical_path(worst_event.node,
                                            worst_event.transition)
        assert [e for e, _ in chain_fast] == [e for e, _ in chain_ref]
        assert [a.time for _, a in chain_fast] == [
            a.time for _, a in chain_ref]

    def test_incremental_does_less_work(self):
        network = ripple_carry_adder(CMOS3, 8)
        inputs = {n: 0.0 for n in adder_input_names(8)}
        fast = TimingAnalyzer(network, incremental=True).analyze(inputs)
        reference = TimingAnalyzer(network, incremental=False).analyze(inputs)
        assert (fast.perf.get("candidates")
                <= reference.perf.get("candidates"))
        assert fast.perf.get("stage_visits") > 0

    def test_identity_with_state_pruning(self):
        """Sensitization states change which events exist; both engines
        must agree under pruning too."""
        network = ripple_carry_adder(CMOS3, 4)
        sim = SwitchSimulator(network)
        vector = {"cin": 0}
        for bit in range(4):
            vector[f"a{bit}"] = 1
            vector[f"b{bit}"] = 0
        pre = dict(sim.run(**vector))
        post = dict(sim.run(**{**vector, "cin": 1}))
        inputs = {n: 0.0 for n in adder_input_names(4)}
        fast = TimingAnalyzer(network, states=post, initial_states=pre,
                              incremental=True).analyze(inputs)
        reference = TimingAnalyzer(network, states=post, initial_states=pre,
                                   incremental=False).analyze(inputs)
        assert set(fast.arrivals) == set(reference.arrivals)
        for event, arrival in fast.arrivals.items():
            assert arrival.time == reference.arrivals[event].time, event


class TestWarmCaches:
    def test_second_analyze_skips_model_evaluations(self):
        network = ripple_carry_adder(CMOS3, 4)
        inputs = {n: 0.0 for n in adder_input_names(4)}
        analyzer = TimingAnalyzer(network)

        first = analyzer.analyze(inputs)
        second = analyzer.analyze(inputs)

        assert first.perf.get("model_evals") > 0
        # Identical scenario, warm memo: no model call should survive.
        assert second.perf.get("model_evals") < first.perf.get("model_evals")
        assert second.perf.get("model_cache_hits") > 0
        # And the answers are the same.
        for event, arrival in first.arrivals.items():
            assert second.arrivals[event].time == arrival.time

    def test_cumulative_counters_accumulate(self):
        network = ripple_carry_adder(CMOS3, 4)
        inputs = {n: 0.0 for n in adder_input_names(4)}
        analyzer = TimingAnalyzer(network)
        first = analyzer.analyze(inputs)
        second = analyzer.analyze(inputs)
        total = analyzer.perf.get("stage_visits")
        assert total == (first.perf.get("stage_visits")
                         + second.perf.get("stage_visits"))

    def test_invalidate_caches_forces_reevaluation(self):
        network = ripple_carry_adder(CMOS3, 4)
        inputs = {n: 0.0 for n in adder_input_names(4)}
        analyzer = TimingAnalyzer(network)
        analyzer.analyze(inputs)
        analyzer.invalidate_caches()
        rerun = analyzer.analyze(inputs)
        assert rerun.perf.get("model_evals") > 0

    def test_shifted_inputs_reuse_slope_cache(self):
        """Moving an input in time changes arrivals but not slopes, so the
        delay memo carries over between scenarios."""
        network = ripple_carry_adder(CMOS3, 4)
        analyzer = TimingAnalyzer(network)
        analyzer.analyze({n: 0.0 for n in adder_input_names(4)})
        shifted = analyzer.analyze(
            {n: 1e-9 for n in adder_input_names(4)})
        assert shifted.perf.get("model_evals") == 0


class TestSlopeQuantization:
    def test_quantization_improves_hit_rate(self):
        network = ripple_carry_adder(CMOS3, 8)
        inputs = {n: 0.0 for n in adder_input_names(8)}
        exact = TimingAnalyzer(network).analyze(inputs)
        coarse = TimingAnalyzer(network,
                                slope_quantum=0.10).analyze(inputs)
        assert (coarse.perf.get("model_evals")
                <= exact.perf.get("model_evals"))

    def test_quantized_results_stay_close(self):
        network = ripple_carry_adder(CMOS3, 8)
        inputs = {n: 0.0 for n in adder_input_names(8)}
        exact = TimingAnalyzer(network).analyze(inputs)
        coarse = TimingAnalyzer(network,
                                slope_quantum=0.05).analyze(inputs)
        worst_exact = exact.arrival("cout", Transition.RISE).time
        worst_coarse = coarse.arrival("cout", Transition.RISE).time
        assert worst_coarse == pytest.approx(worst_exact, rel=0.1)

    def test_negative_quantum_rejected(self):
        with pytest.raises(TimingError):
            TimingAnalyzer(ripple_carry_adder(CMOS3, 2), slope_quantum=-0.1)


class TestPriorityWorklist:
    def test_feedforward_visits_each_stage_once(self):
        """On a feed-forward circuit the levelized worklist converges in a
        single visit per stage."""
        network = ripple_carry_adder(CMOS3, 8)
        inputs = {n: 0.0 for n in adder_input_names(8)}
        result = TimingAnalyzer(network).analyze(inputs)
        visits = result.perf.get("stage_visits")
        stages = len(TimingAnalyzer(network).graph.stages)
        assert visits <= stages

    def test_timing_loop_still_detected(self):
        from repro.circuits import Gates
        from repro.netlist import Network

        net = Network(CMOS3)
        gates = Gates(net)
        gates.nand(["set", "qb"], "q")
        gates.nand(["reset", "q"], "qb")
        net.mark_input("set", "reset")
        with pytest.raises(TimingError):
            TimingAnalyzer(net).analyze({"set": 0.0, "reset": 0.0})
