"""Cross-module property tests on randomized circuits.

These check the invariants the whole reproduction leans on:

* stage decomposition partitions the channel-connected signal nodes;
* the switch-level simulator agrees with gate-level boolean semantics on
  randomly generated gate DAGs;
* the timing analyzer's arrivals are causally consistent and respect
  model orderings on random gate DAGs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Gates
from repro.core.models import LumpedRCModel, RCTreeModel, SlopeModel
from repro.core.timing import TimingAnalyzer
from repro.netlist import Network, decompose_stages
from repro.switchlevel import Logic, SwitchSimulator
from repro.tech import CMOS3, NMOS4, Transition

#: A random gate DAG recipe: each entry adds one gate whose inputs are
#: drawn from the already-available signals.
GATE_KINDS = ("inv", "nand", "nor", "xor")

gate_recipe = st.lists(
    st.tuples(st.sampled_from(GATE_KINDS), st.integers(0, 10 ** 6),
              st.integers(0, 10 ** 6)),
    min_size=1, max_size=7)


def build_dag(tech, recipe, num_inputs=3):
    """Deterministically build a gate DAG from a recipe; returns
    (network, evaluator) where evaluator maps input bits to expected
    boolean node values."""
    net = Network(tech)
    gates = Gates(net)
    signals = [f"x{i}" for i in range(num_inputs)]
    for node in signals:
        net.add_node(node)
    functions = {node: None for node in signals}  # None = primary input

    for index, (kind, pick_a, pick_b) in enumerate(recipe):
        a = signals[pick_a % len(signals)]
        b = signals[pick_b % len(signals)]
        out = f"g{index}"
        if kind == "inv":
            gates.inverter(a, out)
            functions[out] = ("inv", a)
        elif kind == "nand":
            if a == b:
                b = signals[(pick_b + 1) % len(signals)]
            if a == b:
                gates.inverter(a, out)
                functions[out] = ("inv", a)
            else:
                gates.nand([a, b], out)
                functions[out] = ("nand", a, b)
        elif kind == "nor":
            if a == b:
                b = signals[(pick_b + 1) % len(signals)]
            if a == b:
                gates.inverter(a, out)
                functions[out] = ("inv", a)
            else:
                gates.nor([a, b], out)
                functions[out] = ("nor", a, b)
        else:  # xor
            if a == b:
                b = signals[(pick_b + 1) % len(signals)]
            if a == b:
                gates.inverter(a, out)
                functions[out] = ("inv", a)
            else:
                gates.xor(a, b, out)
                functions[out] = ("xor", a, b)
        signals.append(out)

    inputs = [f"x{i}" for i in range(num_inputs)]
    net.mark_input(*inputs)

    def evaluate(bits):
        values = {f"x{i}": bool(bits[i]) for i in range(num_inputs)}
        for node, func in functions.items():
            if func is None:
                continue
            if func[0] == "inv":
                values[node] = not values[func[1]]
            elif func[0] == "nand":
                values[node] = not (values[func[1]] and values[func[2]])
            elif func[0] == "nor":
                values[node] = not (values[func[1]] or values[func[2]])
            else:
                values[node] = values[func[1]] ^ values[func[2]]
        return values

    return net, inputs, list(functions), evaluate


class TestStagePartition:
    @settings(max_examples=25, deadline=None)
    @given(recipe=gate_recipe)
    def test_stages_partition_channel_nodes(self, recipe):
        net, _, _, _ = build_dag(CMOS3, recipe)
        stages = decompose_stages(net)
        driven = set(net.externally_driven())
        channel_nodes = set()
        for device in net.transistors:
            channel_nodes.update(device.channel)
        counted = {}
        for stage in stages:
            for node in stage.internal_nodes:
                counted[node] = counted.get(node, 0) + 1
        assert set(counted) == channel_nodes - driven
        assert all(v == 1 for v in counted.values())

    @settings(max_examples=25, deadline=None)
    @given(recipe=gate_recipe)
    def test_gate_inputs_never_internal_elsewhere(self, recipe):
        """A stage's gate inputs are either inputs or internal to exactly
        one (possibly the same) stage — the stage-graph precondition."""
        net, _, _, _ = build_dag(CMOS3, recipe)
        stages = decompose_stages(net)
        owner = {}
        for stage in stages:
            for node in stage.internal_nodes:
                owner[node] = stage.index
        for stage in stages:
            for gate in stage.gate_inputs:
                node = net.node(gate)
                assert node.is_driven_externally or gate in owner


class TestSwitchLevelAgainstBoolean:
    @settings(max_examples=20, deadline=None)
    @given(recipe=gate_recipe, bits=st.tuples(
        st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)))
    def test_cmos_dag_matches_semantics(self, recipe, bits):
        net, inputs, nodes, evaluate = build_dag(CMOS3, recipe)
        sim = SwitchSimulator(net)
        for name, bit in zip(inputs, bits):
            sim.set_input(name, bit)
        sim.settle()
        expected = evaluate(bits)
        for node in nodes:
            if node in inputs:
                continue
            assert sim.value(node) is Logic.from_bool(expected[node]), node

    @settings(max_examples=10, deadline=None)
    @given(recipe=gate_recipe, bits=st.tuples(
        st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)))
    def test_nmos_dag_matches_semantics(self, recipe, bits):
        net, inputs, nodes, evaluate = build_dag(NMOS4, recipe)
        sim = SwitchSimulator(net)
        for name, bit in zip(inputs, bits):
            sim.set_input(name, bit)
        sim.settle()
        expected = evaluate(bits)
        for node in nodes:
            if node in inputs:
                continue
            assert sim.value(node) is Logic.from_bool(expected[node]), node


class TestTimingConsistency:
    @settings(max_examples=15, deadline=None)
    @given(recipe=gate_recipe)
    def test_arrivals_causally_consistent(self, recipe):
        net, inputs, nodes, _ = build_dag(CMOS3, recipe)
        result = TimingAnalyzer(net).analyze({n: 0.0 for n in inputs})
        for event, arrival in result.arrivals.items():
            if arrival.is_primary:
                assert arrival.time == 0.0
                continue
            upstream = result.arrivals[arrival.cause]
            assert arrival.time >= upstream.time
            assert arrival.stage_delay is not None
            assert arrival.time == pytest.approx(
                upstream.time + arrival.stage_delay.delay)

    @settings(max_examples=10, deadline=None)
    @given(recipe=gate_recipe)
    def test_models_agree_on_reachability(self, recipe):
        """All three models compute arrivals for exactly the same events
        (they differ in numbers, never in structure)."""
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        spec = {n: 0.0 for n in inputs}
        events = []
        for model in (LumpedRCModel(), RCTreeModel(), SlopeModel()):
            result = TimingAnalyzer(net, model=model).analyze(spec)
            events.append(set(result.arrivals))
        assert events[0] == events[1] == events[2]
