"""Property-based differential tests: every fast path vs its reference.

Random feed-forward gate networks × random input vectors, asserting
three engines agree bit-identically on every (event → time, slope,
cause) triple:

* ``incremental=True`` (demand-driven re-evaluation, PR 1's fast path),
* ``incremental=False`` (the brute-force reference),
* batched ``analyze_many()`` through one shared analyzer (this PR's
  fast path — it must inherit the equivalence guarantee even though its
  caches are warm with other vectors' work).

Maier's "Gain and Pain of a Reliable Delay Model" point: a fast delay
model is only trustworthy while it is continuously checked against its
reference — this file is that check on randomized inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import ExplicitVectors, RandomVectors, run_sweep
from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.tech import CMOS3

from .test_properties import build_dag, gate_recipe

#: Arrival times on a coarse deterministic grid; slopes from a small set.
_TIME_STEP = 0.1e-9
_SLOPES = (0.0, 0.2e-9, 1.0e-9)

vector_recipe = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20), st.integers(0, 20),
              st.integers(0, len(_SLOPES) - 1)),
    min_size=1, max_size=4)


def _vectors_from_recipe(inputs, recipe):
    vectors = []
    for ticks in recipe:
        slope = _SLOPES[ticks[-1]]
        vectors.append({
            name: InputSpec(arrival_rise=ticks[i] * _TIME_STEP,
                            arrival_fall=ticks[i] * _TIME_STEP,
                            slope=slope)
            for i, name in enumerate(inputs)
        })
    return vectors


def assert_identical(result, reference, context):
    assert set(result.arrivals) == set(reference.arrivals), context
    for event, arrival in result.arrivals.items():
        expected = reference.arrivals[event]
        assert arrival.time == expected.time, (context, event)
        assert arrival.slope == expected.slope, (context, event)
        assert arrival.cause == expected.cause, (context, event)


class TestRandomNetworksRandomVectors:
    @settings(max_examples=12, deadline=None)
    @given(recipe=gate_recipe, vecs=vector_recipe)
    def test_batched_equals_incremental_equals_reference(self, recipe, vecs):
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        vectors = _vectors_from_recipe(inputs, vecs)

        batched = TimingAnalyzer(net).analyze_many(vectors)
        for index, (spec, batch_result) in enumerate(zip(vectors, batched)):
            fast = TimingAnalyzer(net, incremental=True).analyze(spec)
            reference = TimingAnalyzer(net,
                                       incremental=False).analyze(spec)
            assert_identical(fast, reference, ("incremental", index))
            assert_identical(batch_result, reference, ("batched", index))

    @settings(max_examples=8, deadline=None)
    @given(recipe=gate_recipe, seed=st.integers(0, 10 ** 6))
    def test_sweep_engine_equals_reference(self, recipe, seed):
        """The full sweep engine (vector source + run_sweep) against the
        brute-force reference, per scenario."""
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        source = ExplicitVectors(list(RandomVectors(
            input_names=inputs, count=3, seed=seed, span=1e-9,
            slope=0.3e-9)))
        sweep = run_sweep(net, source)
        for outcome in sweep.outcomes:
            reference = TimingAnalyzer(net, incremental=False).analyze(
                outcome.vector.inputs)
            assert_identical(outcome.result, reference, outcome.label)


@pytest.mark.slow
class TestAdderSweepDifferential:
    """A heavier seeded (non-hypothesis) battery on a real carry chain."""

    def test_rca8_random_sweep_matches_reference(self):
        network = ripple_carry_adder(CMOS3, 8)
        source = RandomVectors(input_names=adder_input_names(8), count=16,
                               seed=2026, span=2e-9, slope=0.3e-9)
        sweep = run_sweep(network, source)
        for outcome in sweep.outcomes:
            reference = TimingAnalyzer(network, incremental=False).analyze(
                outcome.vector.inputs)
            assert_identical(outcome.result, reference, outcome.label)
