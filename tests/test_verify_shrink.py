"""The greedy delta-debugging shrinker in isolation (ISSUE 8).

Synthetic predicates (no engine in the loop) pin down the mechanics:
1-minimality against a known culprit set, vector reduction, validity
filtering (a candidate that stops analyzing must be rejected, not
accepted), and ``subset_network``'s preservation of roles and caps.
"""

import pytest

from repro.batch.vectors import Vector
from repro.circuits import inverter_chain, random_logic_dag
from repro.core.timing import InputSpec
from repro.netlist import NodeRole
from repro.perf import PerfCounters
from repro.tech import CMOS3
from repro.verify import ConformanceCase, generate_case, shrink_case, subset_network


def _case_from(net, vector_count=3):
    inputs = sorted(n.name for n in net.inputs())
    vectors = [
        Vector(label=f"v{i}",
               inputs={name: InputSpec(arrival_rise=i * 1e-10,
                                       arrival_fall=i * 1e-10)
                       for name in inputs})
        for i in range(vector_count)]
    return ConformanceCase(name="synthetic", seed=0, family="dag",
                           network=net, vectors=vectors)


class TestSubsetNetwork:
    def test_keeps_roles_and_caps(self):
        net = random_logic_dag(CMOS3, seed=3, gates=6, inputs=3)
        names = [d.name for d in net.transistors]
        sub = subset_network(net, names)
        assert {d.name for d in sub.transistors} == set(names)
        for node in net.signal_nodes:
            if not sub.has_node(node.name):
                continue
            other = sub.node(node.name)
            assert other.role is node.role, node.name
            assert other.capacitance == node.capacitance, node.name

    def test_drops_orphaned_nodes(self):
        net = inverter_chain(CMOS3, stages=3)
        # keep only the first inverter's devices
        first = [d for d in net.transistors if d.gate == "in"]
        sub = subset_network(net, [d.name for d in first])
        assert sub.has_node("in")
        assert len(sub.transistors) == len(first)
        assert len(sub.signal_nodes) < len(net.signal_nodes)

    def test_keeps_passives_selectively(self):
        net = inverter_chain(CMOS3, stages=1)
        net.add_capacitor("out", "in", 5e-15, name="cf")
        net.add_resistor("out", "mid", 100.0, name="rr")
        all_t = [d.name for d in net.transistors]
        sub = subset_network(net, all_t, keep_resistors=["rr"])
        assert [r.name for r in sub.resistors] == ["rr"]
        assert not sub.capacitors
        sub = subset_network(net, all_t, keep_capacitors=["cf"])
        assert [c.name for c in sub.capacitors] == ["cf"]
        assert not sub.resistors


class TestShrinkCase:
    def test_shrinks_to_culprit_device(self):
        net = random_logic_dag(CMOS3, seed=9, gates=8, inputs=3)
        case = _case_from(net)
        culprit = net.transistors[len(net.transistors) // 2].name

        def still_fails(candidate):
            return any(d.name == culprit
                       for d in candidate.network.transistors)

        perf = PerfCounters()
        shrunk = shrink_case(case, still_fails, perf)
        assert [d.name for d in shrunk.network.transistors] == [culprit]
        assert len(shrunk.vectors) == 1
        assert perf.get("verify_shrink_attempts") > 0
        assert perf.get("verify_shrink_removed") > 0

    def test_shrinks_to_culprit_pair(self):
        net = random_logic_dag(CMOS3, seed=4, gates=6, inputs=2)
        devices = [d.name for d in net.transistors]
        culprits = {devices[0], devices[-1]}

        def still_fails(candidate):
            names = {d.name for d in candidate.network.transistors}
            return culprits <= names

        shrunk = shrink_case(_case_from(net), still_fails, PerfCounters())
        assert {d.name for d in shrunk.network.transistors} == culprits

    def test_shrinks_to_culprit_vector(self):
        net = inverter_chain(CMOS3, stages=2)
        case = _case_from(net, vector_count=4)

        def still_fails(candidate):
            return any(v.label == "v2" for v in candidate.vectors)

        shrunk = shrink_case(case, still_fails, PerfCounters())
        assert [v.label for v in shrunk.vectors] == ["v2"]

    def test_rejects_invalid_candidates(self):
        """A predicate that raises (candidate no longer analyzes) must
        count as not-failing: the element stays in."""
        from repro.errors import ReproError

        net = inverter_chain(CMOS3, stages=2)
        case = _case_from(net)
        required = {d.name for d in net.transistors}

        calls = {"invalid": 0}

        def still_fails(candidate):
            names = {d.name for d in candidate.network.transistors}
            if names != required:
                calls["invalid"] += 1
                raise ReproError("candidate does not analyze")
            return True

        def guarded(candidate):
            try:
                return still_fails(candidate)
            except ReproError:
                return False

        shrunk = shrink_case(case, guarded, PerfCounters())
        assert {d.name for d in shrunk.network.transistors} == required
        assert calls["invalid"] > 0

    def test_never_empties_the_case(self):
        net = inverter_chain(CMOS3, stages=1)
        case = _case_from(net, vector_count=2)
        shrunk = shrink_case(case, lambda candidate: True, PerfCounters())
        assert shrunk.vectors, "shrinker removed every vector"
        assert (shrunk.network.transistors or shrunk.network.resistors
                or shrunk.network.capacitors), "shrinker emptied the netlist"

    def test_clock_pruning_via_with_parts(self):
        case = None
        for index in range(30):
            candidate = generate_case(CMOS3, seed=0, index=index)
            if candidate.family == "clocked":
                case = candidate
                break
        assert case is not None
        # drop every device: with_parts must prune the clock map to the
        # nodes that survive
        empty = subset_network(case.network, [])
        pruned = case.with_parts(network=empty, vectors=[])
        assert pruned.clocks == {}
        assert pruned.schedule is case.schedule

    def test_generated_case_input_filtering(self):
        """Vectors of a shrunk generated case only reference surviving
        inputs (the pruning path the engine-backed shrink relies on)."""
        case = generate_case(CMOS3, seed=6, index=1)

        def still_fails(candidate):
            return bool(candidate.network.transistors) and bool(
                candidate.vectors)

        shrunk = shrink_case(case, still_fails, PerfCounters())
        surviving = {n.name for n in shrunk.network.inputs()}
        for vector in shrunk.vectors:
            assert set(vector.inputs) <= surviving
