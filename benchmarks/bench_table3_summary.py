"""Experiment T3 — aggregate model-error summary over both circuit suites.

The paper's headline accuracy claim: the slope model averages ~10% error
against circuit simulation across the test set, while the simpler models
average several times that.
"""

from repro.bench import format_error_summary, summarize_errors


def test_table3_summary(benchmark, nmos_rows, cmos_rows, emit):
    def render():
        return format_error_summary(
            summarize_errors(list(nmos_rows) + list(cmos_rows)),
            "Table T3: model error summary (nMOS + CMOS suites)")

    table = benchmark(render)
    emit("table3_summary", table)

    summaries = {s.model: s for s in summarize_errors(
        list(nmos_rows) + list(cmos_rows))}
    slope = summaries["slope"]
    lumped = summaries["lumped-rc"]
    rc_tree = summaries["rc-tree"]

    # Paper shape: slope ~10% mean, constant-R models several times worse.
    assert slope.mean_abs_error < 0.15
    assert lumped.mean_abs_error > 2.0 * slope.mean_abs_error
    assert rc_tree.mean_abs_error > 1.3 * slope.mean_abs_error
    # Lumped RC's worst case approaches a factor of two.
    assert lumped.max_abs_error > 0.5
