"""Ablation A1 — the slope model with and without slope propagation.

DESIGN.md calls out slope propagation (each stage's output transition
time feeding the next stage's slope ratio) as the model's load-bearing
design choice.  This ablation runs the slope model twice on slope-
dominated inverter chains — once as shipped, once with every stage forced
to assume a step input — and shows the accuracy collapse.
"""

from repro.analog import delay_between, simulate, sources
from repro.bench import format_series
from repro.circuits import inverter_chain
from repro.core.models import SlopeModel
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.tech import Transition


def _measure(tech, stages, input_slope):
    net = inverter_chain(tech, stages)
    result = simulate(
        net,
        {"in": sources.edge(tech.vdd, rising=True, at=2e-9 + input_slope,
                            transition_time=input_slope)},
        t_stop=2e-9 + input_slope + 12e-9 * stages,
        steps=2500,
    )
    out_edge = Transition.RISE if stages % 2 == 0 else Transition.FALL
    reference = delay_between(result.waveform("in"), result.waveform("out"),
                              tech.vdd, Transition.RISE, out_edge)
    inputs = {"in": InputSpec(arrival_rise=0.0, arrival_fall=None,
                              slope=input_slope)}
    estimates = {}
    for label, model in (
        ("with-propagation", SlopeModel(propagate_slopes=True)),
        ("no-propagation", SlopeModel(propagate_slopes=False)),
    ):
        analysis = TimingAnalyzer(net, model=model).analyze(inputs)
        estimates[label] = analysis.arrival("out", out_edge).time
    return reference, estimates


def test_ablation_slope_propagation(benchmark, cmos_char, emit):
    cases = {(stages, slope): _measure(cmos_char, stages, slope)
             for stages in (2, 4, 6)
             for slope in (0.3e-9, 2e-9)}

    def render():
        rows = []
        for (stages, slope), (reference, est) in sorted(cases.items()):
            rows.append((
                stages, slope, reference,
                est["with-propagation"],
                (est["with-propagation"] - reference) / reference,
                est["no-propagation"],
                (est["no-propagation"] - reference) / reference,
            ))
        return format_series(
            ["stages", "input slope", "reference", "propagated",
             "prop err", "step-assumed", "step err"],
            rows,
            "Ablation A1: slope propagation on inverter chains")

    emit("ablation_slope_propagation", benchmark(render))

    # With propagation: small errors everywhere.  Without: systematic,
    # large underestimates that grow with chain length.
    for (stages, slope), (reference, est) in cases.items():
        err_with = abs(est["with-propagation"] - reference) / reference
        err_without = abs(est["no-propagation"] - reference) / reference
        assert err_with < 0.12, (stages, slope, err_with)
        if stages >= 4:
            assert err_without > 2.0 * err_with, (stages, slope)
            # The un-propagated model always underestimates.
            assert est["no-propagation"] < reference
