"""Machine-readable trajectory for the parallel execution subsystem.

Two workloads, each run at ``jobs`` ∈ {1, 2, 4}:

* **level-front** — one analysis of the wide-datapath circuit (12
  independent 8-bit adder slices: every stage-graph level is ~dozens of
  stages wide, the shape level-front sharding exists for);
* **scenario** — a 24-vector seeded sweep of the 32-bit ripple-carry
  adder through ``run_sweep(jobs=N)``.

Writes ``BENCH_parallel.json`` next to this file: per-jobs wall times,
the speedup table, the load-imbalance ratio, fallback events, and the
engine counters, plus a bounded history.

The run **fails** when

* any arrival differs between a parallel run and the serial reference
  (bit-identity is the subsystem's core contract), or
* the ranked sweep summary at jobs=4 is not byte-identical to jobs=1, or
* the delay candidates considered change with the job count (chunking
  must repartition work, never add or drop any), or
* a parallel run recorded a fallback event (this bench runs with no
  fault injection, so any fallback here is a real pool failure), or
* the jobs=4 model-evaluation count regresses more than 25 % over the
  committed baseline (deterministic counter gate), or
* — only on hosts with ≥ 4 CPUs and without ``REPRO_BENCH_NO_FAIL`` —
  the jobs=4 wide-datapath analysis achieves less than 2× wall-clock
  speedup over jobs=1.  Speedup is physically meaningless on fewer
  cores (this container has one), so like the batch bench's wall guard
  it is hardware-gated; the numbers are always recorded.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.batch import RandomVectors, format_sweep_summary, run_sweep
from repro.circuits import (adder_input_names, ripple_carry_adder,
                            wide_datapath, wide_datapath_input_names)
from repro.core.timing import TimingAnalyzer
from repro.parallel import ParallelConfig, parallel_analyze

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_parallel.json"

JOBS = (1, 2, 4)
SLICES, SLICE_BITS = 12, 8
SWEEP_BITS, VECTORS, SEED = 32, 24, 1984
SPAN, SLOPE = 2e-9, 0.3e-9

#: jobs=4 model-eval growth allowed over the committed baseline.
REGRESSION_TOLERANCE = 1.25
#: the ISSUE-4 acceptance bar, enforced only where the hardware allows it
MIN_SPEEDUP = 2.0
MIN_CPUS = 4

HISTORY_LIMIT = 50


def _arrivals_identical(a, b):
    if set(a) != set(b):
        return False
    return all(a[e].time == b[e].time and a[e].slope == b[e].slope
               for e in a)


def test_parallel_speedup(cmos_char, emit):
    wide = wide_datapath(cmos_char, SLICES, SLICE_BITS)
    wide_inputs = {name: 0.0
                   for name in wide_datapath_input_names(SLICES, SLICE_BITS)}
    rca = ripple_carry_adder(cmos_char, SWEEP_BITS)
    source = list(RandomVectors(input_names=adder_input_names(SWEEP_BITS),
                                count=VECTORS, seed=SEED, span=SPAN,
                                slope=SLOPE))

    level, scenario = {}, {}
    reference_arrivals = None
    reference_summary = None
    candidate_counts = {}

    for jobs in JOBS:
        # Level-front: fresh analyzer per run so every run pays the same
        # cold-cache cost — the wall times compare like with like.
        analyzer = TimingAnalyzer(wide)
        start = time.perf_counter()
        result = parallel_analyze(wide, wide_inputs, jobs=jobs,
                                  analyzer=analyzer,
                                  config=ParallelConfig(jobs=jobs))
        wall = time.perf_counter() - start
        pp = result.perf.parallel
        level[jobs] = {
            "seconds": wall,
            "imbalance": pp.load_imbalance,
            "chunks": pp.chunk_count,
            "fallback_events": list(pp.fallback_events),
            "counters": dict(result.perf.counters),
        }
        if jobs == 1:
            reference_arrivals = result.arrivals
        else:
            assert _arrivals_identical(reference_arrivals, result.arrivals), (
                f"level-front jobs={jobs} arrivals diverged from serial")
            assert not pp.fell_back, (
                f"unexpected fallback at jobs={jobs}: {pp.fallback_events}")
            candidate_counts[jobs] = result.perf.get("candidates")

        # Scenario sharding through the public sweep API.
        start = time.perf_counter()
        sweep = run_sweep(rca, source, jobs=jobs)
        wall = time.perf_counter() - start
        summary = format_sweep_summary(sweep)
        spp = sweep.parallel
        scenario[jobs] = {
            "seconds": wall,
            "imbalance": spp.load_imbalance if spp else None,
            "fallback_events": list(spp.fallback_events) if spp else [],
        }
        if jobs == 1:
            reference_summary = summary
        else:
            assert summary == reference_summary, (
                f"sweep summary at jobs={jobs} is not byte-identical to "
                "jobs=1")
            assert not spp.fell_back, (
                f"unexpected sweep fallback at jobs={jobs}: "
                f"{spp.fallback_events}")

    assert candidate_counts[2] == candidate_counts[4], (
        "delay candidates changed with the job count: "
        f"{candidate_counts} — chunking must repartition work, not alter it")

    def speedup(table, jobs):
        return table[1]["seconds"] / table[jobs]["seconds"]

    lines = [
        f"parallel execution (widepath {SLICES}x{SLICE_BITS} analyze, "
        f"rca{SWEEP_BITS} x{VECTORS} sweep; {os.cpu_count()} cpu(s))",
        f"{'jobs':>4} {'analyze s':>10} {'speedup':>8} {'imbal':>6}   "
        f"{'sweep s':>8} {'speedup':>8}",
    ]
    for jobs in JOBS:
        imbal = level[jobs]["imbalance"]
        lines.append(
            f"{jobs:>4} {level[jobs]['seconds']:>10.3f} "
            f"{speedup(level, jobs):>7.2f}x "
            f"{(f'{imbal:.2f}' if imbal else '-'):>6}   "
            f"{scenario[jobs]['seconds']:>8.3f} "
            f"{speedup(scenario, jobs):>7.2f}x")
    lines.append("bit-identical arrivals and byte-identical sweep "
                 "summaries at every job count")
    emit("parallel", "\n".join(lines))

    previous, history = None, []
    if RESULT_FILE.exists():
        recorded = json.loads(RESULT_FILE.read_text())
        previous = recorded.get("parallel", {})
        history = recorded.get("history", [])
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpus": os.cpu_count(),
        "analyze_speedup_j4": speedup(level, 4),
        "sweep_speedup_j4": speedup(scenario, 4),
    })
    payload = {
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "parallel": {
            "level_front": {str(j): level[j] for j in JOBS},
            "scenario": {str(j): scenario[j] for j in JOBS},
            "analyze_speedup_j4": speedup(level, 4),
            "sweep_speedup_j4": speedup(scenario, 4),
            "identical": True,
            "model_evals_j4": level[4]["counters"].get("model_evals", 0),
        },
        "history": history[-HISTORY_LIMIT:],
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    if previous:
        recorded_evals = previous.get("model_evals_j4")
        if recorded_evals:
            evals = payload["parallel"]["model_evals_j4"]
            assert evals <= recorded_evals * REGRESSION_TOLERANCE, (
                f"jobs=4 model evals regressed: {evals} vs recorded "
                f"baseline {recorded_evals} (>{REGRESSION_TOLERANCE:.0%})")

    cpus = os.cpu_count() or 1
    if cpus >= MIN_CPUS and not os.environ.get("REPRO_BENCH_NO_FAIL"):
        assert speedup(level, 4) >= MIN_SPEEDUP, (
            f"jobs=4 level-front speedup {speedup(level, 4):.2f}x below "
            f"the {MIN_SPEEDUP:.0f}x bar on a {cpus}-cpu host")
