"""Experiment T1 — nMOS test circuits, three models vs the reference.

Regenerates the paper's nMOS results table: per-circuit delay for the
lumped-RC, RC-tree and slope models, with signed errors against the
analog reference simulator.

Expected shape (paper): the slope model's errors are small (single-digit
to low-teens percent); the constant-resistance models miss by tens of
percent, worst on slope-dominated gates and on pass chains.
"""

from repro.bench import format_comparison_table


def test_table1_nmos(benchmark, nmos_rows, nmos_char, emit):
    def render():
        return format_comparison_table(
            nmos_rows, "Table T1: nMOS test circuits (delay vs reference)")

    table = benchmark(render)
    emit("table1_nmos", table)

    # Reproduction assertions: who wins, by roughly what factor.
    slope_errors = [abs(r.estimate("slope").error) for r in nmos_rows]
    lumped_errors = [abs(r.estimate("lumped-rc").error) for r in nmos_rows]
    mean_slope = sum(slope_errors) / len(slope_errors)
    mean_lumped = sum(lumped_errors) / len(lumped_errors)
    assert mean_slope < 0.15, f"slope model mean error {mean_slope:.1%}"
    assert mean_slope < 0.6 * mean_lumped, (
        "slope model should clearly beat lumped RC")


def test_table1_pass_chain_pessimism(nmos_rows):
    """Lumped RC approaches 2x pessimism on the longest pass chain."""
    row = next(r for r in nmos_rows if r.scenario == "pass-chain-8")
    assert row.estimate("lumped-rc").error > 0.4
    assert abs(row.estimate("rc-tree").error) < abs(
        row.estimate("lumped-rc").error)
