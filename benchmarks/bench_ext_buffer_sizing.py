"""Extension experiment E2 — the classic buffer-chain sizing study.

A minimum inverter must drive a load hundreds of times its input
capacitance.  The textbook result (contemporary with the paper) is a
geometrically tapered chain with an optimum stage count: too few stages
and the last one is crushed by the load; too many and the intrinsic
delays pile up.

This bench sweeps the stage count with the slope model and cross-checks
the sweep's *shape* against the analog reference: both must show an
interior optimum, at (nearly) the same stage count — a non-trivial
validation because the optimum is created exactly by the slope effects
the constant-R models cannot see.
"""

import pytest

from repro.analog import delay_between, simulate, sources
from repro.bench import format_series
from repro.circuits import Gates
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.netlist import Network
from repro.tech import Transition

LOAD = 2e-12  # ~300x a minimum gate's input capacitance
STAGE_COUNTS = (1, 2, 3, 4, 6, 8)


def tapered_chain(tech, stages):
    """`stages` inverters with geometrically increasing size driving LOAD."""
    net = Network(tech, name=f"buffer{stages}")
    gates = Gates(net)
    # Input capacitance of a unit inverter:
    unit_cin = net.tech.params(list(net.tech.devices)[0]).gate_capacitance(
        6e-6, 2e-6)
    ratio = (LOAD / (20 * unit_cin)) ** (1.0 / stages)
    ratio = max(ratio, 1.0)
    previous = "in"
    for i in range(1, stages + 1):
        node = "out" if i == stages else f"n{i}"
        gates.inverter(previous, node, size=ratio ** (i - 1))
        previous = node
    gates.load_cap("out", LOAD)
    net.mark_input("in")
    return net


def _model_delay(tech, stages):
    net = tapered_chain(tech, stages)
    out_edge = Transition.RISE if stages % 2 == 0 else Transition.FALL
    result = TimingAnalyzer(net).analyze(
        {"in": InputSpec(arrival_rise=0.0, arrival_fall=None,
                         slope=0.2e-9)})
    return result.arrival("out", out_edge).time


def _reference_delay(tech, stages):
    net = tapered_chain(tech, stages)
    out_edge = Transition.RISE if stages % 2 == 0 else Transition.FALL
    result = simulate(
        net, {"in": sources.edge(tech.vdd, rising=True, at=1e-9,
                                 transition_time=0.2e-9)},
        t_stop=80e-9, steps=2500)
    return delay_between(result.waveform("in"), result.waveform("out"),
                         tech.vdd, Transition.RISE, out_edge)


def test_ext_buffer_sizing(benchmark, cmos_char, emit):
    model = {n: _model_delay(cmos_char, n) for n in STAGE_COUNTS}
    reference = {n: _reference_delay(cmos_char, n) for n in STAGE_COUNTS}

    def render():
        rows = [(n, reference[n], model[n],
                 (model[n] - reference[n]) / reference[n])
                for n in STAGE_COUNTS]
        return format_series(
            ["stages", "reference", "slope model", "model err"],
            rows,
            f"Extension E2: buffer chain into {LOAD * 1e12:.0f}pF")

    emit("ext_buffer_sizing", benchmark(render))

    best_model = min(STAGE_COUNTS, key=lambda n: model[n])
    best_reference = min(STAGE_COUNTS, key=lambda n: reference[n])

    # Interior optimum in both sweeps (not at either end).
    assert best_reference not in (STAGE_COUNTS[0], STAGE_COUNTS[-1])
    # The model finds (nearly) the same optimum.
    index_m = STAGE_COUNTS.index(best_model)
    index_r = STAGE_COUNTS.index(best_reference)
    assert abs(index_m - index_r) <= 1
    # Both sweeps actually punish the extremes.
    assert reference[STAGE_COUNTS[0]] > 1.2 * reference[best_reference]
    assert reference[STAGE_COUNTS[-1]] > 1.1 * reference[best_reference]
