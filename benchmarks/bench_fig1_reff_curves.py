"""Experiment F1 — effective resistance vs slope ratio (the characterized
curves).

The paper's central figure: the effective resistance of each device kind,
normalized to its step-input value, plotted against the ratio of input
transition time to the stage's intrinsic time constant.  Slow inputs make
devices look several times more resistive; the curves are flat near zero
(step-like inputs) and grow without bound.

This bench dumps the fitted curves as a series table and asserts their
qualitative shape.
"""

import pytest

from repro.bench import format_series
from repro.core.models.characterize import characterize_fixture, fixtures_for
from repro.tech import DeviceKind, Transition


@pytest.fixture(scope="module")
def cmos_curves(cmos_char):
    tables = cmos_char.slope_tables
    return {key: tables.get(*key) for key in tables.keys()}


def test_fig1_reff_curves(benchmark, cmos_char, nmos_char, emit):
    def render():
        rows = []
        for tech in (nmos_char, cmos_char):
            tables = tech.slope_tables
            for kind, transition in tables.keys():
                table = tables.get(kind, transition)
                for r, d, s in zip(table.ratios, table.delay_factors,
                                   table.slope_factors):
                    rows.append((tech.name, f"{kind.name}/{transition.value}",
                                 r, d, s))
        return format_series(
            ["technology", "device/edge", "slope ratio", "R_eff/R_step",
             "t_out/tau"],
            rows,
            "Figure F1: effective resistance vs slope ratio (characterized)")

    emit("fig1_reff_curves", benchmark(render))


def test_fig1_driven_curves_grow(cmos_char, nmos_char):
    """Driven stages: effective resistance grows monotonically (and
    severalfold) from step to very slow inputs."""
    for tech, kind, transition in (
        (cmos_char, DeviceKind.NMOS_ENH, Transition.FALL),
        (cmos_char, DeviceKind.PMOS, Transition.RISE),
        (nmos_char, DeviceKind.NMOS_ENH, Transition.FALL),
    ):
        table = tech.slope_tables.get(kind, transition)
        first = table.delay_factors[0]
        peak = max(table.delay_factors)
        assert 0.85 < first < 1.15, f"{kind}: step factor should be ~1"
        assert peak > 2.0, f"{kind}: slow-input factor should grow severalfold"
        # Monotone over the paper's working range (ratios up to ~10).  At
        # extreme ratios a gate whose switching threshold sits below 50%
        # of the swing sees its midpoint-referenced delay *shrink* again —
        # physical, and exactly why the tables are measured, not assumed.
        in_range = [d for r, d in zip(table.ratios, table.delay_factors)
                    if r <= 10.0]
        for a, b in zip(in_range, in_range[1:]):
            assert b > a - 0.02


def test_fig1_pass_curves_flat(cmos_char):
    """Pass devices: the output follows the input, so the *delay* factor
    stays near (or below) one while the output slope tracks the input."""
    table = cmos_char.slope_tables.get(DeviceKind.NMOS_ENH, Transition.RISE)
    assert max(table.delay_factors) < 1.5
    assert table.slope_factors[-1] > 5.0 * table.slope_factors[0]


def test_fig1_depletion_load_release_timed(nmos_char):
    """The nMOS rising-output curve is *release-timed*: the output cannot
    rise until the slowly falling input lets the pulldown go (near the end
    of the ramp), so its delay factor grows faster with slope ratio than a
    driven pulldown's — the strongest slope effect in the table, and one a
    constant-resistance model cannot represent at all."""
    dep = nmos_char.slope_tables.get(DeviceKind.NMOS_DEP, Transition.RISE)
    enh = nmos_char.slope_tables.get(DeviceKind.NMOS_ENH, Transition.FALL)
    dep_growth = dep.delay_factors[-1] / dep.delay_factors[0]
    enh_growth = enh.delay_factors[-1] / enh.delay_factors[0]
    assert dep_growth > enh_growth
    assert dep.delay_factors[0] == pytest.approx(1.0, abs=0.15)
