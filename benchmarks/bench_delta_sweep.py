"""Machine-readable trajectory for the delta-driven sweep engine.

Runs 64 Gray-ordered cartesian vectors (6 binary axes on high-order
input bits) over the 32-bit ripple-carry adder two ways — dirty-cone
delta re-analysis (``analyze_many(delta=True)``) versus the full batch
worklist per scenario — and writes ``BENCH_delta.json`` next to this
file: wall time and stage-visit counts for both sides, the visit ratio,
the cone/skip counters, and a bounded history of previous runs.

The run **fails** when

* any per-scenario arrival differs between the delta and full runs (the
  delta path must inherit the engine's equivalence guarantee), or
* delta re-analysis needs less than 3× fewer stage visits per scenario
  than the full batch (the ISSUE-7 acceptance bar), or
* the delta sweep's stage-visit count regresses more than 25 % over the
  committed baseline (deterministic, so a trip is a genuine dirty-cone
  regression), or
* the delta sweep's wall time exceeds twice the *best* sample in the
  recorded history.  Wall time is noisy on shared machines, so only a
  2x blowout over the historical best is treated as signal; set
  ``REPRO_BENCH_NO_FAIL=1`` to record without enforcing the wall guard.
  The counter gates always apply.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.batch import CartesianSweep, order_vectors
from repro.bench import delta_sweep_comparison
from repro.circuits import adder_input_names, ripple_carry_adder

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_delta.json"

#: Allowed delta-sweep stage-visit growth over the baseline before failing.
REGRESSION_TOLERANCE = 1.25

#: Wall-clock guard: fail only beyond this multiple of the historical best.
WALL_TOLERANCE = 2.0

#: The ISSUE-7 acceptance bar: ≥3× fewer stage visits per scenario.
MIN_VISIT_RATIO = 3.0

BITS = 32
#: Six binary axes spread across the high half of the carry chain: 2^6 =
#: 64 vectors whose Gray ordering flips exactly one input per step, so
#: each delta scenario's dirty cone is one operand bit's downstream.
AXES = ("a16", "b18", "a21", "b24", "a27", "b31")
EARLY = 0.0
LATE = 0.5e-9
SLOPE = 0.3e-9

HISTORY_LIMIT = 50


def test_delta_sweep(cmos_char, emit):
    network = ripple_carry_adder(cmos_char, BITS)
    base = {name: EARLY for name in adder_input_names(BITS)}
    source = CartesianSweep(base=base,
                            axes={name: [EARLY, LATE] for name in AXES})
    vectors = list(source)
    permutation = order_vectors(vectors, "gray", source)
    ordered = [vectors[position].inputs for position in permutation]
    row = delta_sweep_comparison(network, ordered)

    visits_delta = row.delta_stage_visits / row.scenarios
    visits_full = row.full_stage_visits / row.scenarios
    lines = [
        f"delta sweep (rca{BITS}, {len(ordered)} Gray-ordered vectors, "
        f"{len(AXES)} binary axes)",
        f"{'side':<8} {'seconds':>9} {'visits':>9} {'visits/scn':>11}",
        f"{'delta':<8} {row.delta_seconds:>9.3f} "
        f"{row.delta_stage_visits:>9} {visits_delta:>11.1f}",
        f"{'full':<8} {row.full_seconds:>9.3f} "
        f"{row.full_stage_visits:>9} {visits_full:>11.1f}",
        f"visit ratio: {row.visit_ratio:.1f}x fewer stage visits "
        f"per scenario",
        f"cone skip rate: {row.skip_rate:.1%}",
        f"wall speedup: {row.speedup:.1f}x",
        f"bit-identical arrivals: {row.identical}",
    ]
    emit("delta_sweep", "\n".join(lines))

    previous = None
    history = []
    if RESULT_FILE.exists():
        recorded = json.loads(RESULT_FILE.read_text())
        previous = recorded.get("delta", {})
        history = recorded.get("history", [])

    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "delta_seconds": row.delta_seconds,
        "visit_ratio": row.visit_ratio,
    })
    payload = {
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "delta": {
            "circuit": f"rca{BITS}",
            "scenarios": row.scenarios,
            "delta_seconds": row.delta_seconds,
            "full_seconds": row.full_seconds,
            "delta_stage_visits": row.delta_stage_visits,
            "full_stage_visits": row.full_stage_visits,
            "visit_ratio": row.visit_ratio,
            "skip_rate": row.skip_rate,
            "identical": row.identical,
            "delta_counters": row.delta_counters,
        },
        "history": history[-HISTORY_LIMIT:],
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    assert row.identical, (
        "delta sweep diverged from the full-batch reference")
    assert row.scenarios == len(ordered)
    assert row.visit_ratio >= MIN_VISIT_RATIO, (
        f"dirty-cone re-analysis only saved {row.visit_ratio:.1f}x stage "
        f"visits per scenario (need >= {MIN_VISIT_RATIO:.0f}x)")

    if previous:
        # Deterministic gate: the dirty cone must not regress.
        recorded_visits = previous.get("delta_stage_visits")
        if recorded_visits:
            assert (row.delta_stage_visits
                    <= recorded_visits * REGRESSION_TOLERANCE), (
                f"delta sweep stage visits regressed: "
                f"{row.delta_stage_visits} vs recorded baseline "
                f"{recorded_visits} (>{REGRESSION_TOLERANCE:.0%})")

        # Noise-tolerant wall guard against the historical best sample.
        past_walls = [h.get("delta_seconds") for h in history[:-1]
                      if h.get("delta_seconds")]
        if past_walls and not os.environ.get("REPRO_BENCH_NO_FAIL"):
            best = min(past_walls)
            assert row.delta_seconds <= best * WALL_TOLERANCE, (
                f"delta sweep wall time blew out: {row.delta_seconds:.3f}s "
                f"vs historical best {best:.3f}s (>{WALL_TOLERANCE:.0f}x); "
                "set REPRO_BENCH_NO_FAIL=1 to re-record on new hardware")
