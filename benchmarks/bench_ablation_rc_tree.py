"""Ablation A2 — lumped-C vs RC-tree capacitance treatment.

The second design choice DESIGN.md calls out: treating a stage's
capacitance as distributed along the path (RC tree / Elmore) instead of
lumping it all at the output.  On branched pass networks the lumped
treatment charges every side-branch capacitance through the full path
resistance and overestimates grossly; the tree treatment only charges the
shared portion.
"""

from repro.analog import delay_between, simulate, sources
from repro.bench import format_series
from repro.circuits import Gates
from repro.core.models import LumpedRCModel, RCTreeModel
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.netlist import Network
from repro.tech import Transition


def branched_pass_network(tech, trunk: int, branch: int):
    """An inverter driving a pass trunk with a capacitive side branch
    hanging off its midpoint — the structure where lumping is worst."""
    net = Network(tech, name=f"branched{trunk}x{branch}")
    gates = Gates(net)
    gates.inverter("in", "drv")
    previous = "drv"
    mid = max(1, trunk // 2)
    for i in range(1, trunk + 1):
        node = "out" if i == trunk else f"t{i}"
        gates.pass_nmos("en", previous, node)
        previous = node
    # Side branch off the trunk midpoint.
    previous = f"t{mid}" if trunk > 1 else "out"
    for j in range(1, branch + 1):
        node = f"b{j}"
        gates.pass_nmos("en", previous, node)
        net.add_capacitor(node, "gnd", 30e-15)
        previous = node
    net.add_capacitor("out", "gnd", 20e-15)
    net.mark_input("in", "en")
    return net


def _measure(tech, trunk, branch):
    net = branched_pass_network(tech, trunk, branch)
    result = simulate(
        net,
        {"in": sources.edge(tech.vdd, rising=False, at=2e-9,
                            transition_time=0.3e-9),
         "en": tech.vdd},
        t_stop=60e-9 + 25e-9 * (trunk + branch),
        steps=3000,
    )
    reference = delay_between(result.waveform("in"), result.waveform("out"),
                              tech.vdd, Transition.FALL, Transition.RISE)
    inputs = {
        "in": InputSpec(arrival_rise=None, arrival_fall=0.0, slope=0.3e-9),
        "en": InputSpec(arrival_rise=None, arrival_fall=None),
    }
    estimates = {}
    for model in (LumpedRCModel(), RCTreeModel()):
        analysis = TimingAnalyzer(net, model=model).analyze(inputs)
        estimates[model.name] = analysis.arrival("out", Transition.RISE).time
    return reference, estimates


def test_ablation_rc_tree(benchmark, cmos_char, emit):
    cases = {(trunk, branch): _measure(cmos_char, trunk, branch)
             for trunk, branch in ((4, 0), (4, 2), (4, 4), (6, 4))}

    def render():
        rows = []
        for (trunk, branch), (reference, est) in sorted(cases.items()):
            rows.append((
                trunk, branch, reference,
                est["lumped-rc"],
                (est["lumped-rc"] - reference) / reference,
                est["rc-tree"],
                (est["rc-tree"] - reference) / reference,
            ))
        return format_series(
            ["trunk", "branch", "reference", "lumped", "lumped err",
             "rc-tree", "tree err"],
            rows,
            "Ablation A2: capacitance treatment on branched pass networks")

    emit("ablation_rc_tree", benchmark(render))

    for (trunk, branch), (reference, est) in cases.items():
        lumped_err = (est["lumped-rc"] - reference) / reference
        tree_err = abs(est["rc-tree"] - reference) / reference
        assert tree_err < 0.30, ((trunk, branch), tree_err)
        if branch >= 2:
            # Side branches make lumping much worse than the tree.
            assert lumped_err > 2.0 * tree_err, ((trunk, branch),
                                                 lumped_err, tree_err)

    # Pessimism grows with the branch size at fixed trunk.
    errs = {
        branch: (cases[(4, branch)][1]["lumped-rc"] - cases[(4, branch)][0])
        / cases[(4, branch)][0]
        for branch in (0, 2, 4)
    }
    assert errs[4] > errs[2] > errs[0] - 0.05
