"""Machine-readable trajectory for the batch scenario-sweep engine.

Runs 64 seeded-random input vectors over the 32-bit ripple-carry adder
two ways — one shared :class:`TimingAnalyzer` (``analyze_many``) versus
64 fresh analyzers — and writes ``BENCH_batch.json`` next to this file:
wall time and model-evaluation counts for both sides, the cache-sharing
ratio, and a bounded history of previous runs.

The run **fails** when

* any per-scenario arrival differs between the shared and fresh runs
  (the batch path must inherit the engine's equivalence guarantee), or
* the shared analyzer needs less than 5× fewer model evaluations per
  scenario than the fresh analyzers (the ISSUE-3 acceptance bar), or
* the shared sweep's model-evaluation count regresses more than 25 %
  over the committed baseline (deterministic, so a trip is a genuine
  cache-sharing regression), or
* the shared sweep's wall time exceeds twice the *best* sample in the
  recorded history.  Wall time is noisy on shared machines, so only a
  2x blowout over the historical best is treated as signal; set
  ``REPRO_BENCH_NO_FAIL=1`` to record without enforcing the wall guard.
  The counter gates always apply.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.batch import RandomVectors
from repro.bench import batch_runtime_comparison
from repro.circuits import adder_input_names, ripple_carry_adder

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_batch.json"

#: Allowed shared-sweep model-eval growth over the baseline before failing.
REGRESSION_TOLERANCE = 1.25

#: Wall-clock guard: fail only beyond this multiple of the historical best.
WALL_TOLERANCE = 2.0

#: The ISSUE-3 acceptance bar: ≥5× fewer model evals per scenario.
MIN_EVAL_RATIO = 5.0

BITS = 32
VECTORS = 64
SEED = 1984
SPAN = 2e-9
SLOPE = 0.3e-9

HISTORY_LIMIT = 50


def test_batch_sweep(cmos_char, emit):
    network = ripple_carry_adder(cmos_char, BITS)
    source = RandomVectors(input_names=adder_input_names(BITS),
                           count=VECTORS, seed=SEED, span=SPAN, slope=SLOPE)
    vectors = [vector.inputs for vector in source]
    row = batch_runtime_comparison(network, vectors)

    lines = [
        f"batch sweep (rca{BITS}, {VECTORS} random vectors, seed {SEED})",
        f"{'side':<8} {'seconds':>9} {'evals':>9} {'evals/scn':>10}",
        f"{'shared':<8} {row.shared_seconds:>9.3f} "
        f"{row.shared_model_evals:>9} {row.shared_evals_per_scenario:>10.1f}",
        f"{'fresh':<8} {row.fresh_seconds:>9.3f} "
        f"{row.fresh_model_evals:>9} {row.fresh_evals_per_scenario:>10.1f}",
        f"eval ratio: {row.eval_ratio:.1f}x fewer model evals per scenario",
        f"wall speedup: {row.speedup:.1f}x",
        f"bit-identical arrivals: {row.identical}",
    ]
    emit("batch_sweep", "\n".join(lines))

    previous = None
    history = []
    if RESULT_FILE.exists():
        recorded = json.loads(RESULT_FILE.read_text())
        previous = recorded.get("batch", {})
        history = recorded.get("history", [])

    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "shared_seconds": row.shared_seconds,
        "eval_ratio": row.eval_ratio,
    })
    payload = {
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "batch": {
            "circuit": f"rca{BITS}",
            "scenarios": row.scenarios,
            "shared_seconds": row.shared_seconds,
            "fresh_seconds": row.fresh_seconds,
            "shared_model_evals": row.shared_model_evals,
            "fresh_model_evals": row.fresh_model_evals,
            "eval_ratio": row.eval_ratio,
            "identical": row.identical,
            "shared_counters": row.shared_counters,
        },
        "history": history[-HISTORY_LIMIT:],
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    assert row.identical, (
        "shared-analyzer sweep diverged from the fresh-analyzer reference")
    assert row.scenarios == VECTORS
    assert row.eval_ratio >= MIN_EVAL_RATIO, (
        f"cache sharing only saved {row.eval_ratio:.1f}x model evals per "
        f"scenario (need >= {MIN_EVAL_RATIO:.0f}x)")

    if previous:
        # Deterministic gate: cache sharing must not regress.
        recorded_evals = previous.get("shared_model_evals")
        if recorded_evals:
            assert (row.shared_model_evals
                    <= recorded_evals * REGRESSION_TOLERANCE), (
                f"shared sweep model evals regressed: "
                f"{row.shared_model_evals} vs recorded baseline "
                f"{recorded_evals} (>{REGRESSION_TOLERANCE:.0%})")

        # Noise-tolerant wall guard against the historical best sample.
        past_walls = [h.get("shared_seconds") for h in history[:-1]
                      if h.get("shared_seconds")]
        if past_walls and not os.environ.get("REPRO_BENCH_NO_FAIL"):
            best = min(past_walls)
            assert row.shared_seconds <= best * WALL_TOLERANCE, (
                f"shared sweep wall time blew out: {row.shared_seconds:.3f}s "
                f"vs historical best {best:.3f}s (>{WALL_TOLERANCE:.0f}x); "
                "set REPRO_BENCH_NO_FAIL=1 to re-record on new hardware")
