"""Extension experiment E1 — architecture comparison with the analyzer.

The paper's closing argument is that fast switch-level timing lets a
designer *compare architectures* instead of guessing.  This bench does
exactly that: ripple-carry vs carry-select adders across word widths,
critical path (slope model) against device cost.

Expected shape: ripple delay grows linearly with width; carry-select
grows much more slowly (one block plus a mux chain) at a substantial
device-count premium, with the crossover inside the swept range.
"""

from repro.bench import format_series
from repro.circuits import (
    adder_input_names,
    carry_select_adder,
    ripple_carry_adder,
)
from repro.core.timing import TimingAnalyzer

WIDTHS = (4, 8, 16, 24)
BLOCK = 4


def _worst_arrival(network, bits):
    analyzer = TimingAnalyzer(network)
    result = analyzer.analyze({n: 0.0 for n in adder_input_names(bits)})
    return result.worst([f"s{bits - 1}", "cout"])[1].time


def test_ext_adder_architectures(benchmark, cmos_char, emit):
    measurements = {}
    for bits in WIDTHS:
        ripple = ripple_carry_adder(cmos_char, bits)
        select = carry_select_adder(cmos_char, bits, block=BLOCK)
        measurements[bits] = {
            "ripple": (_worst_arrival(ripple, bits),
                       len(ripple.transistors)),
            "select": (_worst_arrival(select, bits),
                       len(select.transistors)),
        }

    def render():
        rows = []
        for bits in WIDTHS:
            (t_r, n_r) = measurements[bits]["ripple"]
            (t_s, n_s) = measurements[bits]["select"]
            rows.append((bits, t_r, n_r, t_s, n_s, t_r / t_s))
        return format_series(
            ["bits", "ripple delay", "ripple devs", "select delay",
             "select devs", "speedup"],
            rows,
            f"Extension E1: ripple vs carry-select (block={BLOCK})")

    emit("ext_adder_architectures", benchmark(render))

    # Shape assertions ----------------------------------------------------
    t_r4, _ = measurements[4]["ripple"]
    t_r24, _ = measurements[24]["ripple"]
    t_s4, n_s4 = measurements[4]["select"]
    t_s24, n_s24 = measurements[24]["select"]

    # Ripple grows ~linearly: 6x the width, ~4-8x the delay.
    assert 3.5 < t_r24 / t_r4 < 9.0
    # Carry-select grows much more slowly than ripple.
    assert (t_s24 / t_s4) < 0.6 * (t_r24 / t_r4)
    # At 24 bits the select adder clearly wins ...
    assert t_s24 < 0.7 * t_r24
    # ... and pays for it in devices.
    _, n_r24 = measurements[24]["ripple"]
    assert n_s24 > 1.5 * n_r24
