"""Vectorized-kernel benchmark: template compilation + batched PRH.

Measures the cold single-scenario rca32 analysis under both kernels:

* ``kernel="numpy"`` — compiled :class:`~repro.rctree.TreeTemplate`
  arrays, structural sharing across isomorphic stages, and the batched
  ``evaluate_many`` candidate loop;
* ``kernel="python"`` — the dict-based :class:`~repro.rctree.RCTree`
  scalar reference path.

Gates enforced (``REPRO_BENCH_NO_FAIL=1`` skips the wall gates when
re-recording on new hardware):

* **speedup** — the numpy kernel must beat the ``BENCH_timing.json``
  rca32 baseline (recorded before the kernel existed) by at least
  :data:`SPEEDUP_TARGET`;
* **differential** — rca8 arrivals (times *and* slopes) must agree
  between the kernels within 1e-9 relative;
* **counters** — the numpy path must build zero dict-trees, reuse
  templates, and must not regress its own recorded counters by more
  than :data:`REGRESSION_TOLERANCE`;
* **wall** — at most :data:`WALL_TOLERANCE` times the historical best
  of this benchmark's own history.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform
import time

from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.timing import TimingAnalyzer

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_kernel.json"

#: rca32 baseline recorded before the vectorized kernel existed.
TIMING_BASELINE = pathlib.Path(__file__).parent / "BENCH_timing.json"

#: Required cold-analysis speedup of kernel="numpy" over the recorded
#: pre-kernel rca32 baseline.
SPEEDUP_TARGET = 3.0

#: Allowed counter growth over this benchmark's own recorded baseline.
REGRESSION_TOLERANCE = 1.25

#: Wall-clock guard vs this benchmark's historical best.
WALL_TOLERANCE = 2.0

#: Best-of-N timing to tame scheduler noise.
REPEATS = 3

#: Runs kept in the trajectory history.
HISTORY_LIMIT = 50

#: Arrival agreement required between the two kernels.
RTOL = 1e-9


def _measure(network, inputs, kernel):
    """Best-of-N cold (construction + analysis) wall time per kernel."""
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = TimingAnalyzer(network, kernel=kernel).analyze(inputs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result.perf)
    seconds, perf = best
    return {
        "kernel": kernel,
        "analyzer_seconds": seconds,
        "counters": dict(perf.counters),
    }


def test_kernel_speedup_and_differential(cmos_char, emit):
    rca32 = ripple_carry_adder(cmos_char, 32)
    rca32_inputs = {name: 0.0 for name in adder_input_names(32)}
    rows = {kernel: _measure(rca32, rca32_inputs, kernel)
            for kernel in ("numpy", "python")}

    # rca8 differential: both kernels, same arrivals to 1e-9 relative.
    rca8 = ripple_carry_adder(cmos_char, 8)
    rca8_inputs = {name: 0.0 for name in adder_input_names(8)}
    arrivals = {
        kernel: TimingAnalyzer(rca8, kernel=kernel).analyze(rca8_inputs)
        .arrivals
        for kernel in ("numpy", "python")}
    assert set(arrivals["numpy"]) == set(arrivals["python"])
    worst = 0.0
    for node, got in arrivals["numpy"].items():
        want = arrivals["python"][node]
        for a, b in ((got.time, want.time), (got.slope, want.slope)):
            if b:
                worst = max(worst, abs(a - b) / abs(b))
            assert math.isclose(a, b, rel_tol=RTOL, abs_tol=1e-15), node

    # Counter shape of the vectorized path: templates instead of trees.
    numpy_counters = rows["numpy"]["counters"]
    assert numpy_counters.get("tree_builds", 0) == 0
    assert numpy_counters["tree_template_misses"] > 0
    assert numpy_counters["kernel_batches"] > 0

    previous = None
    history = []
    baseline_seconds = None
    if RESULT_FILE.exists():
        recorded = json.loads(RESULT_FILE.read_text())
        previous = recorded.get("kernels", {})
        history = recorded.get("history", [])
        # The pre-kernel baseline is *sticky*: BENCH_timing.json keeps
        # re-recording itself with the (now kernel-accelerated) engine,
        # so the honest reference point is the one captured before the
        # kernel existed, carried forward in this benchmark's own file.
        baseline_seconds = recorded.get("baseline_seconds")
    if baseline_seconds is None and TIMING_BASELINE.exists():
        recorded = json.loads(TIMING_BASELINE.read_text())
        rca32_row = recorded.get("circuits", {}).get("rca32")
        if rca32_row:
            baseline_seconds = rca32_row.get("analyzer_seconds")
    speedup = (baseline_seconds / rows["numpy"]["analyzer_seconds"]
               if baseline_seconds else None)

    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "numpy_seconds": rows["numpy"]["analyzer_seconds"],
        "python_seconds": rows["python"]["analyzer_seconds"],
        "speedup_vs_baseline": speedup,
    })
    RESULT_FILE.write_text(json.dumps({
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "circuit": "rca32",
        "baseline_seconds": baseline_seconds,
        "kernels": rows,
        "rca8_worst_relative_error": worst,
        "history": history[-HISTORY_LIMIT:],
    }, indent=2) + "\n")

    lines = ["vectorized kernel (rca32 cold analysis)",
             f"{'kernel':<8} {'seconds':>9} {'templates':>10} "
             f"{'shared':>7} {'hits':>7} {'batches':>8}"]
    for kernel, row in rows.items():
        c = row["counters"]
        lines.append(
            f"{kernel:<8} {row['analyzer_seconds']:>9.4f} "
            f"{c.get('tree_template_misses', 0):>10} "
            f"{c.get('tree_template_shared', 0):>7} "
            f"{c.get('tree_template_hits', 0):>7} "
            f"{c.get('kernel_batches', 0):>8}")
    if speedup is not None:
        lines.append(f"speedup vs pre-kernel baseline "
                     f"({baseline_seconds:.4f}s): {speedup:.2f}x")
    lines.append(f"rca8 numpy-vs-python worst relative error: {worst:.2e}")
    emit("kernel", "\n".join(lines))

    if os.environ.get("REPRO_BENCH_NO_FAIL"):
        return

    # Speedup gate against the pre-kernel baseline.
    if baseline_seconds:
        assert speedup >= SPEEDUP_TARGET, (
            f"numpy kernel {rows['numpy']['analyzer_seconds']:.4f}s is only "
            f"{speedup:.2f}x over the {baseline_seconds:.4f}s baseline "
            f"(need {SPEEDUP_TARGET:.0f}x); set REPRO_BENCH_NO_FAIL=1 to "
            "re-record on new hardware")

    # Self-regression gates against this benchmark's own record.
    if previous and "numpy" in previous:
        recorded_counters = previous["numpy"].get("counters", {})
        for counter in ("model_evals", "candidates", "kernel_batches",
                        "tree_template_misses"):
            recorded = recorded_counters.get(counter)
            if recorded:
                current = numpy_counters.get(counter, 0)
                assert current <= recorded * REGRESSION_TOLERANCE, (
                    f"numpy-kernel {counter} regressed: {current} vs "
                    f"recorded {recorded} (>{REGRESSION_TOLERANCE:.0%})")

    past_walls = [h.get("numpy_seconds") for h in history[:-1]
                  if h.get("numpy_seconds")]
    if past_walls:
        best = min(past_walls)
        current = rows["numpy"]["analyzer_seconds"]
        assert current <= best * WALL_TOLERANCE, (
            f"numpy-kernel wall time blew out: {current:.3f}s vs historical "
            f"best {best:.3f}s (>{WALL_TOLERANCE:.0f}x); set "
            "REPRO_BENCH_NO_FAIL=1 to re-record on new hardware")
