"""Experiment F3 — delay vs input transition time.

The figure that motivates the slope model: sweep the input edge of a
single inverter from much faster to much slower than the stage's
intrinsic time constant.  The measured delay grows strongly with the
input transition time; constant-resistance models are flat lines by
construction; the slope model tracks the reference across the sweep.
"""

from repro.analog import delay_between, simulate, sources
from repro.bench import format_series
from repro.circuits import inverter_chain
from repro.core.models import LumpedRCModel, SlopeModel
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.tech import Transition

#: Input transition times as multiples of the stage's intrinsic tau.
RATIOS = (0.1, 0.3, 1.0, 3.0, 10.0)


def _intrinsic_tau(tech):
    net = inverter_chain(tech, 1, load_cap=100e-15)
    from repro.core.timing.paths import effective_node_cap
    cap = effective_node_cap(net, "out")
    from repro.tech import DeviceKind
    resistance = tech.resistance(DeviceKind.NMOS_ENH, Transition.FALL,
                                 6e-6, 2e-6)
    return resistance * cap


def _measure(tech, t_in):
    net = inverter_chain(tech, 1, load_cap=100e-15)
    result = simulate(
        net,
        {"in": sources.edge(tech.vdd, rising=True, at=max(2e-9, t_in),
                            transition_time=t_in)},
        t_stop=max(2e-9, t_in) + t_in + 25e-9,
        steps=2500,
    )
    reference = delay_between(result.waveform("in"), result.waveform("out"),
                              tech.vdd, Transition.RISE, Transition.FALL)
    inputs = {"in": InputSpec(arrival_rise=0.0, arrival_fall=None,
                              slope=t_in)}
    estimates = {}
    for model in (LumpedRCModel(), SlopeModel()):
        analysis = TimingAnalyzer(net, model=model).analyze(inputs)
        estimates[model.name] = analysis.arrival(
            "out", Transition.FALL).time
    return reference, estimates


def test_fig3_slope_effect(benchmark, cmos_char, emit):
    tau = _intrinsic_tau(cmos_char)
    sweep = {r: _measure(cmos_char, r * tau) for r in RATIOS}

    def render():
        rows = []
        for r in RATIOS:
            reference, estimates = sweep[r]
            rows.append((r, r * tau, reference, estimates["lumped-rc"],
                         estimates["slope"]))
        return format_series(
            ["t_in / tau", "t_in (s)", "reference", "lumped-rc", "slope"],
            rows,
            "Figure F3: inverter delay vs input transition time")

    emit("fig3_slope_effect", benchmark(render))

    # Shape assertions ----------------------------------------------------
    fast_ref, fast_est = sweep[RATIOS[0]]
    slow_ref, slow_est = sweep[RATIOS[-1]]

    # The real delay grows a lot with input slope ...
    assert slow_ref > 2.0 * fast_ref
    # ... the lumped model cannot see it (flat line) ...
    assert abs(slow_est["lumped-rc"] - fast_est["lumped-rc"]) < 0.05 * slow_ref
    # ... and the slope model tracks it closely at both ends.
    assert abs(fast_est["slope"] - fast_ref) / fast_ref < 0.15
    assert abs(slow_est["slope"] - slow_ref) / slow_ref < 0.15


def test_fig3_lumped_error_grows(cmos_char):
    tau = _intrinsic_tau(cmos_char)
    fast_ref, fast_est = _measure(cmos_char, 0.1 * tau)
    slow_ref, slow_est = _measure(cmos_char, 10.0 * tau)
    fast_err = abs(fast_est["lumped-rc"] - fast_ref) / fast_ref
    slow_err = abs(slow_est["lumped-rc"] - slow_ref) / slow_ref
    assert slow_err > 2.0 * fast_err
