"""Experiment T2 — CMOS test circuits, three models vs the reference.

Regenerates the paper's CMOS results table (see bench_table1_nmos for the
nMOS counterpart and the shape expectations)."""

from repro.bench import format_comparison_table


def test_table2_cmos(benchmark, cmos_rows, emit):
    def render():
        return format_comparison_table(
            cmos_rows, "Table T2: CMOS test circuits (delay vs reference)")

    table = benchmark(render)
    emit("table2_cmos", table)

    slope_errors = [abs(r.estimate("slope").error) for r in cmos_rows]
    lumped_errors = [abs(r.estimate("lumped-rc").error) for r in cmos_rows]
    mean_slope = sum(slope_errors) / len(slope_errors)
    mean_lumped = sum(lumped_errors) / len(lumped_errors)
    assert mean_slope < 0.12, f"slope model mean error {mean_slope:.1%}"
    assert mean_slope < 0.5 * mean_lumped


def test_table2_inverter_chain_slope_effect(cmos_rows):
    """Constant-R models badly underestimate slope-dominated chains."""
    row = next(r for r in cmos_rows if r.scenario == "inv-chain-4")
    assert row.estimate("lumped-rc").error < -0.25
    assert abs(row.estimate("slope").error) < 0.10
