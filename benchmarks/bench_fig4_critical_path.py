"""Experiment F4 — Crystal-style critical-path report on a real datapath.

The paper deployed the slope model inside Crystal and reported critical
paths of full designs.  This bench runs the analyzer on an 8-bit
ripple-carry adder, prints the stage-by-stage critical path (the carry
chain), and checks the structural properties the paper relies on: the
worst path ends at the carry-out/MSB sum, its arrival grows linearly with
word width, and every hop of the report is causally consistent.
"""

from repro.bench import format_series
from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.timing import TimingAnalyzer, format_critical_path
from repro.tech import Transition


def _analyze_adder(tech, bits):
    adder = ripple_carry_adder(tech, bits)
    analyzer = TimingAnalyzer(adder)
    return adder, analyzer.analyze(
        {name: 0.0 for name in adder_input_names(bits)})


def test_fig4_critical_path(benchmark, cmos_char, emit):
    adder, result = _analyze_adder(cmos_char, 8)
    outputs = [f"s{i}" for i in range(8)] + ["cout"]
    event, arrival = result.worst(outputs)

    report = format_critical_path(result, event.node, event.transition)
    emit("fig4_critical_path", report)

    # The worst path must end at the top of the carry chain.
    assert event.node in ("cout", "s7")

    # Causal consistency of every hop.
    chain = result.critical_path(event.node, event.transition)
    assert chain[0][1].is_primary
    for (_, earlier), (_, later) in zip(chain, chain[1:]):
        assert later.time >= earlier.time
        assert later.stage_delay is not None

    benchmark(lambda: _analyze_adder(cmos_char, 8))


def test_fig4_arrival_scales_with_width(cmos_char, emit):
    rows = []
    worsts = {}
    for bits in (2, 4, 8, 16):
        _, result = _analyze_adder(cmos_char, bits)
        outputs = [f"s{bits - 1}", "cout"]
        _, arrival = result.worst(outputs)
        worsts[bits] = arrival.time
        rows.append((bits, arrival.time))
    emit("fig4_scaling", format_series(
        ["bits", "critical arrival (s)"], rows,
        "Figure F4b: adder critical arrival vs word width"))

    # Ripple carry: arrival ~ linear in width (ratio of ratios ~ 1).
    growth_small = worsts[4] / worsts[2]
    growth_large = worsts[16] / worsts[8]
    assert worsts[16] > worsts[2]
    assert 1.2 < growth_small < 3.5
    assert 1.5 < growth_large < 2.6
