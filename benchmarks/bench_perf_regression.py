"""Machine-readable perf trajectory for the timing engine.

Runs the Table-T4 scenarios (ripple-carry adders 4..32 bits plus the
5-bit decoder) through the analyzer, and writes ``BENCH_timing.json``
next to this file: wall time, device count, and the engine's perf
counters (stage visits, model evaluations, cache hit rate, worklist
traffic) for every circuit, plus a bounded history of previous runs so
future PRs can see the trend.

The run **fails** when rca32 regresses more than 25 % over the committed
baseline on the hardware-independent counters (model evaluations, stage
visits) — those are deterministic, so a trip is a genuine engine
regression.  Wall time is noisy on shared machines (±30 % between
back-to-back runs is common), so it is guarded loosely instead: the run
also fails if rca32 wall time exceeds twice the *best* sample in the
recorded history.  Set ``REPRO_BENCH_NO_FAIL=1`` to record without
enforcing the wall guard (e.g. on a first run on slow hardware); the
counter gate always applies.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.circuits import adder_input_names, decoder, ripple_carry_adder
from repro.core.timing import TimingAnalyzer

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_timing.json"

#: Allowed rca32 counter growth over the recorded baseline before failing.
REGRESSION_TOLERANCE = 1.25

#: Wall-clock guard: fail only beyond this multiple of the historical best.
WALL_TOLERANCE = 2.0

#: Best-of-N timing to tame scheduler noise.
REPEATS = 3

#: Runs kept in the trajectory history.
HISTORY_LIMIT = 50


def _t4_scenarios(tech):
    for bits in (4, 8, 16, 32):
        yield (f"rca{bits}", ripple_carry_adder(tech, bits),
               {name: 0.0 for name in adder_input_names(bits)})
    yield ("dec5", decoder(tech, 5), {f"a{i}": 0.0 for i in range(5)})


def _measure(network, inputs):
    """Best-of-N cold analysis wall time, with the fastest run's counters."""
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = TimingAnalyzer(network).analyze(inputs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result.perf)
    seconds, perf = best
    return {
        "transistors": len(network.transistors),
        "analyzer_seconds": seconds,
        "counters": dict(perf.counters) if perf else {},
    }


def test_perf_regression(cmos_char, emit):
    circuits = {}
    for name, network, inputs in _t4_scenarios(cmos_char):
        circuits[name] = _measure(network, inputs)

    previous = None
    history = []
    if RESULT_FILE.exists():
        recorded = json.loads(RESULT_FILE.read_text())
        previous = recorded.get("circuits", {})
        history = recorded.get("history", [])

    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rca32_seconds": circuits["rca32"]["analyzer_seconds"],
        "rca32_model_evals":
            circuits["rca32"]["counters"].get("model_evals"),
    })
    payload = {
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "circuits": circuits,
        "history": history[-HISTORY_LIMIT:],
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["perf regression (T4 circuits)",
             f"{'circuit':<8} {'devices':>8} {'seconds':>9} "
             f"{'visits':>7} {'evals':>7} {'hits':>7}"]
    for name, row in circuits.items():
        c = row["counters"]
        lines.append(
            f"{name:<8} {row['transistors']:>8} "
            f"{row['analyzer_seconds']:>9.4f} "
            f"{c.get('stage_visits', 0):>7} {c.get('model_evals', 0):>7} "
            f"{c.get('model_cache_hits', 0):>7}")
    emit("perf_regression", "\n".join(lines))

    # Every circuit must report the counters the trajectory tracks.
    for name, row in circuits.items():
        for counter in ("stage_visits", "model_evals", "worklist_pushes"):
            assert counter in row["counters"], (name, counter)

    if previous and "rca32" in previous:
        # Deterministic gate: the engine's counters must not regress.
        baseline_counters = previous["rca32"].get("counters", {})
        current_counters = circuits["rca32"]["counters"]
        for counter in ("model_evals", "stage_visits"):
            recorded = baseline_counters.get(counter)
            if recorded:
                assert (current_counters[counter]
                        <= recorded * REGRESSION_TOLERANCE), (
                    f"rca32 {counter} regressed: {current_counters[counter]} "
                    f"vs recorded baseline {recorded} "
                    f"(>{REGRESSION_TOLERANCE:.0%})")

        # Noise-tolerant wall guard: only the historical best is a stable
        # reference point on a shared machine, and only a 2x blowout is
        # signal rather than scheduler jitter.
        past_walls = [h.get("rca32_seconds") for h in history[:-1]
                      if h.get("rca32_seconds")]
        current = circuits["rca32"]["analyzer_seconds"]
        if past_walls and not os.environ.get("REPRO_BENCH_NO_FAIL"):
            best = min(past_walls)
            assert current <= best * WALL_TOLERANCE, (
                f"rca32 analysis wall time blew out: {current:.3f}s vs "
                f"historical best {best:.3f}s (>{WALL_TOLERANCE:.0f}x); set "
                "REPRO_BENCH_NO_FAIL=1 to re-record on new hardware")
