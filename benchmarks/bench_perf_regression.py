"""Machine-readable perf trajectory for the timing engine.

Runs the Table-T4 scenarios (ripple-carry adders 4..32 bits plus the
5-bit decoder) through the analyzer, and writes ``BENCH_timing.json``
next to this file: wall time, device count, and the engine's perf
counters (stage visits, model evaluations, cache hit rate, worklist
traffic) for every circuit, plus a bounded history of previous runs so
future PRs can see the trend.

The run **fails** when rca32 analysis regresses more than 25 % over the
wall time recorded in the committed baseline.  Wall clocks differ across
machines, so set ``REPRO_BENCH_NO_FAIL=1`` to record without enforcing
(e.g. on a first run on new hardware); the counter columns are
hardware-independent and always comparable.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.circuits import adder_input_names, decoder, ripple_carry_adder
from repro.core.timing import TimingAnalyzer

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_timing.json"

#: Allowed rca32 slowdown over the recorded baseline before failing.
REGRESSION_TOLERANCE = 1.25

#: Best-of-N timing to tame scheduler noise.
REPEATS = 3

#: Runs kept in the trajectory history.
HISTORY_LIMIT = 50


def _t4_scenarios(tech):
    for bits in (4, 8, 16, 32):
        yield (f"rca{bits}", ripple_carry_adder(tech, bits),
               {name: 0.0 for name in adder_input_names(bits)})
    yield ("dec5", decoder(tech, 5), {f"a{i}": 0.0 for i in range(5)})


def _measure(network, inputs):
    """Best-of-N cold analysis wall time, with the fastest run's counters."""
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = TimingAnalyzer(network).analyze(inputs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result.perf)
    seconds, perf = best
    return {
        "transistors": len(network.transistors),
        "analyzer_seconds": seconds,
        "counters": dict(perf.counters) if perf else {},
    }


def test_perf_regression(cmos_char, emit):
    circuits = {}
    for name, network, inputs in _t4_scenarios(cmos_char):
        circuits[name] = _measure(network, inputs)

    previous = None
    history = []
    if RESULT_FILE.exists():
        recorded = json.loads(RESULT_FILE.read_text())
        previous = recorded.get("circuits", {})
        history = recorded.get("history", [])

    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rca32_seconds": circuits["rca32"]["analyzer_seconds"],
        "rca32_model_evals":
            circuits["rca32"]["counters"].get("model_evals"),
    })
    payload = {
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "circuits": circuits,
        "history": history[-HISTORY_LIMIT:],
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["perf regression (T4 circuits)",
             f"{'circuit':<8} {'devices':>8} {'seconds':>9} "
             f"{'visits':>7} {'evals':>7} {'hits':>7}"]
    for name, row in circuits.items():
        c = row["counters"]
        lines.append(
            f"{name:<8} {row['transistors']:>8} "
            f"{row['analyzer_seconds']:>9.4f} "
            f"{c.get('stage_visits', 0):>7} {c.get('model_evals', 0):>7} "
            f"{c.get('model_cache_hits', 0):>7}")
    emit("perf_regression", "\n".join(lines))

    # Every circuit must report the counters the trajectory tracks.
    for name, row in circuits.items():
        for counter in ("stage_visits", "model_evals", "worklist_pushes"):
            assert counter in row["counters"], (name, counter)

    if previous and "rca32" in previous:
        baseline = previous["rca32"].get("analyzer_seconds")
        current = circuits["rca32"]["analyzer_seconds"]
        if baseline and not os.environ.get("REPRO_BENCH_NO_FAIL"):
            assert current <= baseline * REGRESSION_TOLERANCE, (
                f"rca32 analysis regressed: {current:.3f}s vs recorded "
                f"baseline {baseline:.3f}s (>{REGRESSION_TOLERANCE:.0%}); "
                "set REPRO_BENCH_NO_FAIL=1 to re-record on new hardware")
