"""Trace-overhead bench: disabled span sites must cost < 2 % on rca32.

The observability budget (ISSUE 9, DESIGN.md §7): instrumentation that
is *off* must be effectively free, so tracing can stay compiled into the
hot paths rather than behind a build flag.  A wall-clock A/B cannot gate
a 2 % bound — scheduler noise at these run lengths is larger than the
signal — so the gate is deterministic:

1. run the workload traced and count the span records it emits (every
   record is one disabled-site dict/None check in the untraced run);
2. microbenchmark the per-call cost of one disabled span site;
3. gate ``records x site_cost / untraced_wall < 2 %``.

The *enabled* overhead (traced wall over untraced wall) is measured and
recorded in ``BENCH_trace.json`` for the trend history, but not gated:
tracing is opt-in.
"""

import json
import os
import pathlib
import platform
import time

from repro.batch import CartesianSweep, order_vectors
from repro.bench import trace_overhead_comparison
from repro.circuits import adder_input_names, ripple_carry_adder

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_trace.json"

#: The ISSUE-9 acceptance bar: disabled tracing costs < 2 % of the run.
DISABLED_OVERHEAD_BUDGET = 0.02

#: Enabled tracing should stay within a small multiple of the run; this
#: is a sanity rail (recording must not dominate), not a perf promise.
ENABLED_OVERHEAD_CEILING = 3.0

BITS = 32
#: Four binary axes -> 16 Gray-ordered vectors: enough scenarios that
#: the span count reflects steady-state instrumentation density, small
#: enough that the bench stays in CI time.
AXES = ("a7", "b13", "a21", "b27")
EARLY = 0.0
LATE = 0.5e-9

HISTORY_LIMIT = 50


def test_trace_overhead(cmos_char, emit):
    network = ripple_carry_adder(cmos_char, BITS)
    base = {name: EARLY for name in adder_input_names(BITS)}
    source = CartesianSweep(base=base,
                            axes={name: [EARLY, LATE] for name in AXES})
    vectors = list(source)
    permutation = order_vectors(vectors, "gray", source)
    ordered = [vectors[position].inputs for position in permutation]

    row = trace_overhead_comparison(network, ordered)
    disabled = row.disabled_overhead_est
    enabled = row.enabled_overhead

    lines = [
        f"trace overhead (rca{BITS}, {row.scenarios} vectors)",
        f"untraced wall:        {row.off_seconds:9.3f}s",
        f"traced wall:          {row.on_seconds:9.3f}s",
        f"span records:         {row.span_records:9d}",
        f"disabled site cost:   {row.site_cost * 1e9:9.1f}ns/site",
        f"disabled overhead:    {disabled:9.3%} (est, budget "
        f"{DISABLED_OVERHEAD_BUDGET:.0%})",
        f"enabled overhead:     {enabled:9.1%} (recorded, not gated)",
    ]
    emit("trace_overhead", "\n".join(lines))

    history = []
    if RESULT_FILE.exists():
        history = json.loads(RESULT_FILE.read_text()).get("history", [])
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "disabled_overhead_est": disabled,
        "enabled_overhead": enabled,
    })
    payload = {
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "trace": {
            "circuit": f"rca{BITS}",
            "scenarios": row.scenarios,
            "off_seconds": row.off_seconds,
            "on_seconds": row.on_seconds,
            "span_records": row.span_records,
            "site_cost_seconds": row.site_cost,
            "disabled_overhead_est": disabled,
            "enabled_overhead": enabled,
        },
        "history": history[-HISTORY_LIMIT:],
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    assert row.span_records > 0, "traced run recorded no spans"
    assert disabled is not None
    assert disabled < DISABLED_OVERHEAD_BUDGET, (
        f"disabled tracing costs ~{disabled:.2%} of the rca{BITS} run "
        f"(budget {DISABLED_OVERHEAD_BUDGET:.0%}): an instrumented hot "
        "path is firing too often or the span() fast path regressed")
    if not os.environ.get("REPRO_BENCH_NO_FAIL"):
        assert enabled is not None and enabled < ENABLED_OVERHEAD_CEILING, (
            f"enabled tracing inflates the run {enabled:.1%} "
            f"(ceiling {ENABLED_OVERHEAD_CEILING:.0%}); recording is "
            "doing too much work per span")
