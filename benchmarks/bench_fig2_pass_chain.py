"""Experiment F2 — delay vs pass-chain length.

The distributed-RC figure: delay through a chain of N pass transistors
grows ~quadratically in N.  The lumped model (total R times total C) is
increasingly pessimistic — approaching a factor of two — while the
RC-tree model's Elmore estimate tracks the reference and the RPH bounds
bracket it.
"""

from repro.analog import delay_between, simulate, sources
from repro.bench import format_series
from repro.circuits import pass_chain
from repro.core.models import LumpedRCModel, RCTreeModel
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.tech import Transition

LENGTHS = (1, 2, 4, 6, 8, 10)


def _measure_chain(tech, length):
    net = pass_chain(tech, length)
    result = simulate(
        net,
        {"in": sources.edge(tech.vdd, rising=False, at=2e-9,
                            transition_time=0.3e-9),
         "en": tech.vdd},
        t_stop=40e-9 + 20e-9 * length,
        steps=2500,
    )
    reference = delay_between(result.waveform("in"), result.waveform("out"),
                              tech.vdd, Transition.FALL, Transition.RISE)
    inputs = {
        "in": InputSpec(arrival_rise=None, arrival_fall=0.0, slope=0.3e-9),
        "en": InputSpec(arrival_rise=None, arrival_fall=None),
    }
    estimates = {}
    bounds = (None, None)
    for model in (LumpedRCModel(), RCTreeModel()):
        analysis = TimingAnalyzer(net, model=model).analyze(inputs)
        arrival = analysis.arrival("out", Transition.RISE)
        estimates[model.name] = arrival.time
        if model.name == "rc-tree":
            bounds = (arrival.stage_delay.lower, arrival.stage_delay.upper)
    return reference, estimates, bounds


def test_fig2_pass_chain(benchmark, cmos_char, emit):
    measurements = {n: _measure_chain(cmos_char, n) for n in LENGTHS}

    def render():
        rows = []
        for n in LENGTHS:
            reference, estimates, bounds = measurements[n]
            rows.append((n, reference, estimates["lumped-rc"],
                         estimates["rc-tree"], bounds[0], bounds[1]))
        return format_series(
            ["chain length", "reference", "lumped-rc", "rc-tree (elmore)",
             "RPH lower", "RPH upper"],
            rows,
            "Figure F2: pass-chain delay vs length")

    emit("fig2_pass_chain", benchmark(render))

    # Shape assertions ----------------------------------------------------
    short_ref, short_est, _ = measurements[LENGTHS[1]]
    long_ref, long_est, _ = measurements[LENGTHS[-1]]

    # Quadratic-ish growth of the reference delay with N.
    ratio = long_ref / short_ref
    n_ratio = LENGTHS[-1] / LENGTHS[1]
    assert ratio > 1.5 * n_ratio, "delay should grow superlinearly"

    # Lumped pessimism grows toward 2x; the RC-tree stays close.
    lumped_err_long = (long_est["lumped-rc"] - long_ref) / long_ref
    rc_err_long = abs(long_est["rc-tree"] - long_ref) / long_ref
    assert lumped_err_long > 0.5
    assert rc_err_long < 0.2
    assert rc_err_long < 0.4 * lumped_err_long


def test_fig2_bounds_bracket_reference(cmos_char):
    """The RPH bracket (computed on the fitted RC tree) contains the
    measured reference delay on distributed chains — an empirical check;
    the rigorous linear-network bracketing is property-tested in
    tests/test_rctree_bounds.py."""
    for n in (4, 8, 10):
        reference, estimates, (lower, upper) = _measure_chain(cmos_char, n)
        assert lower < upper
        slack = 0.15 * reference
        assert lower - slack <= reference <= upper + slack
        # The RPH upper bound is tighter than the lumped estimate on
        # long chains — the reason the paper prefers it there.
        assert upper < estimates["lumped-rc"]
