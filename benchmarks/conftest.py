"""Shared fixtures for the benchmark harness.

Characterized technologies and the T1/T2 comparison rows are expensive
(tens of analog transients each), so they are computed once per session
and shared across bench files.  Every bench prints its table/series to
stdout (run ``pytest benchmarks/ --benchmark-only -s`` to see them) and
also writes it under ``benchmarks/output/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import cmos_scenarios, nmos_scenarios, run_suite
from repro.core.models import characterize_technology
from repro.tech import CMOS3, NMOS4

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def cmos_char():
    return characterize_technology(CMOS3)


@pytest.fixture(scope="session")
def nmos_char():
    return characterize_technology(NMOS4)


@pytest.fixture(scope="session")
def cmos_rows(cmos_char):
    return run_suite(cmos_scenarios(cmos_char))


@pytest.fixture(scope="session")
def nmos_rows(nmos_char):
    return run_suite(nmos_scenarios(nmos_char))


@pytest.fixture(scope="session")
def emit():
    """Print a report and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
