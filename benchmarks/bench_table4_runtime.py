"""Experiment T4 — analyzer speed and scaling vs circuit simulation.

Crystal's selling point: switch-level timing analysis of whole chips in
minutes, versus circuit simulation that is infeasible beyond small blocks.
We time a full two-edge timing analysis of ripple-carry adders (4..32
bits) and decoders against a short transient of the same netlists, and
mark the sizes where the dense-matrix reference simulator is no longer
reasonable — the same wall the paper's authors hit with SPICE.

Expected shape: the analyzer's runtime grows roughly linearly with device
count; the simulator's superlinearly; speedups of orders of magnitude on
the sizes where both can run.
"""

import pytest

from repro.analog import sources
from repro.bench import RuntimeRow, format_runtime_table, runtime_comparison
from repro.circuits import adder_input_names, decoder, ripple_carry_adder

#: Largest adder the dense reference simulator is asked to chew on.
MAX_SIMULATED_BITS = 8


def _adder_timing_inputs(bits):
    return {name: 0.0 for name in adder_input_names(bits)}


def _adder_drives(tech, bits):
    drives = {"cin": sources.edge(tech.vdd, rising=True, at=1e-9,
                                  transition_time=0.5e-9)}
    for bit in range(bits):
        drives[f"a{bit}"] = tech.vdd
        drives[f"b{bit}"] = 0.0
    return drives


def test_table4_runtime(benchmark, cmos_char, emit):
    rows = []
    for bits in (4, 8, 16, 32):
        adder = ripple_carry_adder(cmos_char, bits)
        rows.append(runtime_comparison(
            adder,
            timing_inputs=_adder_timing_inputs(bits),
            drives=_adder_drives(cmos_char, bits),
            t_stop=40e-9,
            simulate_reference=bits <= MAX_SIMULATED_BITS,
        ))
    dec = decoder(cmos_char, 5)
    rows.append(runtime_comparison(
        dec,
        timing_inputs={f"a{i}": 0.0 for i in range(5)},
        simulate_reference=False,
    ))

    table = format_runtime_table(
        rows, "Table T4: timing analysis vs transient simulation")
    emit("table4_runtime", table)

    # Reproduction assertions -------------------------------------------
    simulated = [r for r in rows if r.speedup is not None]
    assert simulated, "at least one size must run both ways"
    assert min(r.speedup for r in simulated) > 5, (
        "switch-level analysis should be orders of magnitude faster")

    # Rough linear scaling of the analyzer: runtime per device within a
    # modest factor across a many-fold size range (generous: wall-clock
    # noise on shared machines).
    adder_rows = [r for r in rows if r.circuit.startswith("rca")]
    per_device = [r.analyzer_seconds / r.transistors for r in adder_rows]
    assert max(per_device) < 25 * min(per_device), per_device

    benchmark(lambda: runtime_comparison(
        ripple_carry_adder(cmos_char, 8),
        timing_inputs=_adder_timing_inputs(8),
        simulate_reference=False,
    ))


def test_table4_analyzer_only_scaling(cmos_char):
    """The analyzer handles chip-scale (thousands of devices) netlists."""
    adder = ripple_carry_adder(cmos_char, 48)
    row = runtime_comparison(adder,
                             timing_inputs=_adder_timing_inputs(48),
                             simulate_reference=False)
    assert row.transistors > 2000
    assert row.analyzer_seconds < 120.0
