"""Machine-readable trajectory for the timing service (DESIGN.md §10).

Serves N concurrent clients x M single-vector requests for the 32-bit
ripple-carry adder against one warm in-process daemon, then replays the
same 32 requests as **cold per-request processes** — one fresh
``python -m repro.service.coldref`` per request, the process-per-query
workflow the daemon exists to replace.  Both sides speak the same wire
protocol, so "bit-identical" is asserted on the decoded wire values.

Writes ``BENCH_service.json``: wall time and engine model evaluations
per request for both sides, the pool/coalescing counters, and a bounded
history.  The run **fails** when

* any arrival differs between the warm service and a cold process (the
  service must inherit the engine's equivalence guarantee end-to-end
  through HTTP, JSON, and the analyzer pool), or
* the warm service needs less than 3x fewer model evaluations per
  request than the cold baseline (the PR-10 acceptance bar — warm
  path/template/memo caches are the service's whole point), or
* warm model evals/request regress more than 25 % over the committed
  baseline (deterministic counter, so a trip is a real cache
  regression), or
* the warm side fails to also win on wall clock, or exceeds twice the
  historical best sample.  Wall time is noisy on shared machines;
  ``REPRO_BENCH_NO_FAIL=1`` records without enforcing the wall guards.
  The counter gates always apply.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import platform
import subprocess
import sys
import threading
import time

from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.timing.analyzer import InputSpec
from repro.netlist import sim_format
from repro.service import ServiceClient, ServiceConfig, TimingService
from repro.service.protocol import encode_inputs
from repro.tech import CMOS3

RESULT_FILE = pathlib.Path(__file__).parent / "BENCH_service.json"

#: The PR-10 acceptance bar: >=3x fewer model evals per warm request.
MIN_EVAL_RATIO = 3.0

#: Allowed warm model-eval growth over the baseline before failing.
REGRESSION_TOLERANCE = 1.25

#: Wall-clock guard: fail only beyond this multiple of the historical best.
WALL_TOLERANCE = 2.0

BITS = 32
CLIENTS = 4
REQUESTS_PER_CLIENT = 8          # 32 requests total (the acceptance floor)
SLOPE = 0.2e-9
LATE = 0.4e-9

HISTORY_LIMIT = 50


def _request_inputs(index: int):
    """Deterministic per-request vector; neighbours differ in a handful
    of inputs so the daemon's delta coalescing has structure to exploit."""
    inputs = {}
    for offset, name in enumerate(adder_input_names(BITS)):
        arrival = LATE if (index + offset) % 7 == 0 else 0.0
        inputs[name] = InputSpec(arrival_rise=arrival, arrival_fall=arrival,
                                 slope=SLOPE)
    return inputs


def _serve_warm(netlist, requests):
    """All requests through one warm daemon; returns (responses keyed by
    request index, wall seconds, metrics payload)."""
    service = TimingService(ServiceConfig(port=0, quiet=True,
                                          queue_limit=256, timeout=300.0))
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start())
        ready.set()
        loop.run_until_complete(service.wait_closed())
        loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(30), "service did not start"
    host, port = service.address

    by_index = {}
    errors = []

    def client_worker(worker_index):
        client = ServiceClient(host, port, timeout=300.0)
        for local in range(REQUESTS_PER_CLIENT):
            index = worker_index * REQUESTS_PER_CLIENT + local
            try:
                served = client.analyze(
                    netlist, [(f"q{index}", requests[index])],
                    characterize=False)
                by_index[index] = served[0].arrivals
            except Exception as exc:  # surfaced after the join
                errors.append((index, exc))
                return

    workers = [threading.Thread(target=client_worker, args=(w,))
               for w in range(CLIENTS)]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - start
    assert not errors, f"warm requests failed: {errors[:3]}"

    metrics = ServiceClient(host, port).metrics()
    loop.call_soon_threadsafe(service.request_shutdown)
    thread.join(30)
    return by_index, wall, metrics


def _run_cold(netlist, requests):
    """One fresh process per request; returns (responses, wall seconds,
    total model evals)."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    by_index = {}
    evals = 0
    start = time.perf_counter()
    for index in range(len(requests)):
        payload = {"netlist": netlist, "characterize": False,
                   "vectors": [{"label": f"q{index}",
                                "inputs": encode_inputs(requests[index])}]}
        proc = subprocess.run(
            [sys.executable, "-m", "repro.service.coldref"],
            input=json.dumps(payload), capture_output=True, text=True,
            env=env, timeout=300)
        assert proc.returncode == 0, (
            f"cold process {index} failed: {proc.stderr[-500:]}")
        decoded = json.loads(proc.stdout)
        arrivals = {}
        for record in decoded["results"][0]["arrivals"]:
            arrivals[(record["node"], record["edge"])] = (
                record["time"], record["slope"])
        by_index[index] = arrivals
        evals += decoded["perf"]["counters"].get("model_evals", 0)
    wall = time.perf_counter() - start
    return by_index, wall, evals


def test_service_vs_cold_processes(emit):
    netlist = sim_format.dumps(ripple_carry_adder(CMOS3, BITS))
    total = CLIENTS * REQUESTS_PER_CLIENT
    requests = [_request_inputs(index) for index in range(total)]

    warm, warm_wall, metrics = _serve_warm(netlist, requests)
    cold, cold_wall, cold_evals = _run_cold(netlist, requests)

    assert set(warm) == set(cold) == set(range(total))
    identical = all(warm[index] == cold[index] for index in range(total))

    warm_evals = metrics["perf"]["counters"].get("model_evals", 0)
    warm_per_request = warm_evals / total
    cold_per_request = cold_evals / total
    eval_ratio = (cold_per_request / warm_per_request
                  if warm_per_request else float("inf"))
    coalesced = metrics["service"].get("service_coalesced_requests", 0)
    pool = metrics["pool"]

    lines = [
        f"timing service vs cold per-request processes "
        f"(rca{BITS}, {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests)",
        f"{'side':<14} {'seconds':>9} {'evals/req':>11}",
        f"{'warm service':<14} {warm_wall:>9.3f} {warm_per_request:>11.1f}",
        f"{'cold process':<14} {cold_wall:>9.3f} {cold_per_request:>11.1f}",
        f"model-eval ratio: {eval_ratio:.1f}x fewer evals per warm request",
        f"wall speedup: {cold_wall / warm_wall:.1f}x",
        f"coalesced requests: {coalesced}",
        f"pool: {pool['hits']} hit(s), {pool['misses']} miss(es)",
        f"bit-identical arrivals: {identical}",
    ]
    emit("service", "\n".join(lines))

    previous = None
    history = []
    if RESULT_FILE.exists():
        recorded = json.loads(RESULT_FILE.read_text())
        previous = recorded.get("service", {})
        history = recorded.get("history", [])

    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "warm_seconds": warm_wall,
        "eval_ratio": eval_ratio,
    })
    payload = {
        "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "service": {
            "circuit": f"rca{BITS}",
            "clients": CLIENTS,
            "requests": total,
            "warm_seconds": warm_wall,
            "cold_seconds": cold_wall,
            "warm_evals_per_request": warm_per_request,
            "cold_evals_per_request": cold_per_request,
            "eval_ratio": eval_ratio,
            "wall_speedup": cold_wall / warm_wall,
            "coalesced_requests": coalesced,
            "pool_hits": pool["hits"],
            "pool_misses": pool["misses"],
            "identical": identical,
        },
        "history": history[-HISTORY_LIMIT:],
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    assert identical, (
        "warm service arrivals diverged from the cold per-request "
        "reference")
    assert eval_ratio >= MIN_EVAL_RATIO, (
        f"warm service only saved {eval_ratio:.1f}x model evals per "
        f"request (need >= {MIN_EVAL_RATIO:.0f}x)")

    if previous:
        # Deterministic gate: the warm caches must not regress.
        recorded_evals = previous.get("warm_evals_per_request")
        if recorded_evals:
            assert (warm_per_request
                    <= recorded_evals * REGRESSION_TOLERANCE), (
                f"warm model evals regressed: {warm_per_request:.1f} per "
                f"request vs recorded baseline {recorded_evals:.1f} "
                f"(>{REGRESSION_TOLERANCE:.0%})")

    if not os.environ.get("REPRO_BENCH_NO_FAIL"):
        assert warm_wall < cold_wall, (
            f"warm service lost on wall clock: {warm_wall:.3f}s vs "
            f"{cold_wall:.3f}s cold")
        past_walls = [h.get("warm_seconds") for h in history[:-1]
                      if h.get("warm_seconds")]
        if past_walls:
            best = min(past_walls)
            assert warm_wall <= best * WALL_TOLERANCE, (
                f"warm service wall time blew out: {warm_wall:.3f}s vs "
                f"historical best {best:.3f}s (>{WALL_TOLERANCE:.0f}x); "
                "set REPRO_BENCH_NO_FAIL=1 to re-record on new hardware")
