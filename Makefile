# Entry points for the reproduction's test/bench tiers.
#
#   make test       tier-1: fast unit/property/integration tests
#                   (the driver's gate; slow-marked tests deselected)
#   make test-slow  the slow tier: analog golden-reference checks,
#                   heavy seeded sweeps, end-to-end example runs
#   make perf       the two perf-regression benches; each fails on a
#                   >25% regression over its committed counter baseline
#                   (BENCH_timing.json / BENCH_batch.json) or a 2x
#                   wall-clock blowout over the historical best
#   make perf-parallel  the parallel-execution bench: records speedup at
#                   jobs 1/2/4 into BENCH_parallel.json, asserts
#                   bit-identity across job counts, and enforces the
#                   >=2x speedup gate on hosts with >=4 CPUs
#   make perf-kernel    the vectorized-kernel bench: numpy vs python
#                   kernels on rca32 into BENCH_kernel.json, rca8
#                   arrival differential at 1e-9, and the >=3x speedup
#                   gate over the pre-kernel BENCH_timing.json baseline
#   make perf-delta the delta-sweep bench: dirty-cone re-analysis vs
#                   the full batch on rca32 x 64 Gray-ordered vectors
#                   into BENCH_delta.json; enforces bit-identity, the
#                   >=3x stage-visit gate, and the 25% counter /
#                   2x wall regression gates
#   make perf-trace the tracing-overhead bench: rca32 untraced vs traced
#                   into BENCH_trace.json; enforces the <2% deterministic
#                   disabled-overhead gate and records enabled overhead
#   make perf-service   the timing-service bench: warm daemon vs cold
#                   per-request processes on rca32 into BENCH_service.json;
#                   enforces bit-identity, the >=3x model-eval gate, and
#                   the 25% counter / 2x wall regression gates
#   make verify-smoke   the conformance smoke gate: 20 fuzzed netlists x
#                   the full engine-mode matrix at fixed seed 0 (plus
#                   metamorphic invariants), must exit clean in <60s
#   make trace-smoke    the observability smoke gate: a jobs=2 traced
#                   sweep must emit a valid Chrome trace with nested
#                   spans from >=2 worker processes
#   make service-smoke  the serving smoke gate: a real daemon process,
#                   4 concurrent clients, bit-identical arrivals, live
#                   /metrics, a valid --trace, and a clean SIGTERM
#                   drain, all under a hard watchdog
#   make verify-deep    the deep conformance sweep: 200 cases per seed
#                   over seeds 0-2; run before releases / after engine
#                   changes, not in CI
#   make check      all of the above, in cheapest-first order
#   make bench      regenerate every paper table/figure (long)
#   make bench-all  refresh every BENCH_*.json baseline in one pass and
#                   commit the updated files (run after perf-relevant
#                   changes so the committed baselines track reality)

PYTHONPATH := src
PYTEST := PYTHONPATH=$(PYTHONPATH) python -m pytest

BENCH_FILES := benchmarks/BENCH_timing.json benchmarks/BENCH_batch.json \
               benchmarks/BENCH_parallel.json benchmarks/BENCH_kernel.json \
               benchmarks/BENCH_delta.json benchmarks/BENCH_trace.json \
               benchmarks/BENCH_service.json

.PHONY: test test-slow perf perf-parallel perf-kernel perf-delta \
        perf-trace perf-service verify-smoke verify-deep trace-smoke \
        service-smoke check check-fast bench bench-all goldens

test:
	$(PYTEST) -x -q

test-slow:
	$(PYTEST) -q -m slow

perf:
	$(PYTEST) benchmarks/bench_perf_regression.py \
	          benchmarks/bench_batch_sweep.py \
	          benchmarks/bench_delta_sweep.py -q -s

perf-parallel:
	$(PYTEST) benchmarks/bench_parallel.py -q -s

perf-kernel:
	$(PYTEST) benchmarks/bench_kernel.py -q -s

perf-delta:
	$(PYTEST) benchmarks/bench_delta_sweep.py -q -s

perf-trace:
	$(PYTEST) benchmarks/bench_trace_overhead.py -q -s

perf-service:
	$(PYTEST) benchmarks/bench_service.py -q -s

verify-smoke:
	PYTHONPATH=$(PYTHONPATH) python -m repro.cli verify \
	          --cases 20 --seed 0 --profile

verify-deep:
	for seed in 0 1 2; do \
	    PYTHONPATH=$(PYTHONPATH) python -m repro.cli verify \
	              --cases 200 --seed $$seed || exit 1; \
	done

trace-smoke:
	PYTHONPATH=$(PYTHONPATH) python -m repro.trace.smoke

service-smoke:
	PYTHONPATH=$(PYTHONPATH) python -m repro.service.smoke --watchdog 300

check: test test-slow perf perf-parallel perf-kernel verify-smoke trace-smoke service-smoke

# CI's gate: everything in `check` except the slow tier (analog golden
# references are too heavy for shared runners).
check-fast: test perf perf-parallel perf-kernel verify-smoke trace-smoke service-smoke

# Refresh every perf baseline and commit the result.  REPRO_BENCH_NO_FAIL
# disables the wall-clock guards (new hardware re-records cleanly); the
# deterministic counter gates still apply.
bench-all:
	REPRO_BENCH_NO_FAIL=1 $(PYTEST) \
	          benchmarks/bench_perf_regression.py \
	          benchmarks/bench_batch_sweep.py \
	          benchmarks/bench_parallel.py \
	          benchmarks/bench_kernel.py \
	          benchmarks/bench_delta_sweep.py \
	          benchmarks/bench_trace_overhead.py \
	          benchmarks/bench_service.py -q -s
	git add $(BENCH_FILES)
	git diff --cached --quiet -- $(BENCH_FILES) || \
	          git commit -m "Refresh perf baselines" -- $(BENCH_FILES)

bench:
	$(PYTEST) benchmarks/ -q -s

goldens:
	PYTHONPATH=$(PYTHONPATH):. python tests/test_golden_reference.py \
	          --regenerate
