# Entry points for the reproduction's test/bench tiers.
#
#   make test       tier-1: fast unit/property/integration tests
#                   (the driver's gate; slow-marked tests deselected)
#   make test-slow  the slow tier: analog golden-reference checks,
#                   heavy seeded sweeps, end-to-end example runs
#   make perf       the two perf-regression benches; each fails on a
#                   >25% regression over its committed counter baseline
#                   (BENCH_timing.json / BENCH_batch.json) or a 2x
#                   wall-clock blowout over the historical best
#   make perf-parallel  the parallel-execution bench: records speedup at
#                   jobs 1/2/4 into BENCH_parallel.json, asserts
#                   bit-identity across job counts, and enforces the
#                   >=2x speedup gate on hosts with >=4 CPUs
#   make perf-kernel    the vectorized-kernel bench: numpy vs python
#                   kernels on rca32 into BENCH_kernel.json, rca8
#                   arrival differential at 1e-9, and the >=3x speedup
#                   gate over the pre-kernel BENCH_timing.json baseline
#   make check      all of the above, in cheapest-first order
#   make bench      regenerate every paper table/figure (long)

PYTHONPATH := src
PYTEST := PYTHONPATH=$(PYTHONPATH) python -m pytest

.PHONY: test test-slow perf perf-parallel perf-kernel check check-fast \
        bench goldens

test:
	$(PYTEST) -x -q

test-slow:
	$(PYTEST) -q -m slow

perf:
	$(PYTEST) benchmarks/bench_perf_regression.py \
	          benchmarks/bench_batch_sweep.py -q -s

perf-parallel:
	$(PYTEST) benchmarks/bench_parallel.py -q -s

perf-kernel:
	$(PYTEST) benchmarks/bench_kernel.py -q -s

check: test test-slow perf perf-parallel perf-kernel

# CI's gate: everything in `check` except the slow tier (analog golden
# references are too heavy for shared runners).
check-fast: test perf perf-parallel perf-kernel

bench:
	$(PYTEST) benchmarks/ -q -s

goldens:
	PYTHONPATH=$(PYTHONPATH):. python tests/test_golden_reference.py \
	          --regenerate
