#!/usr/bin/env python
"""Clocked-circuit verification: the job Crystal was built for.

Takes a two-phase dynamic pipeline (pass-transistor latches around logic),
runs setup checks against a clock schedule, binary-searches the minimum
clock period, and scans for charge-sharing hazards — the full 1984 chip
sign-off flow on a small example.

Run:  python examples/clocked_pipeline.py
"""

from repro import CMOS3, characterize_technology
from repro.circuits import Gates
from repro.core.timing import (
    ClockSchedule,
    InputSpec,
    analyze_clocked,
    find_charge_sharing_hazards,
    format_hazard_report,
    format_setup_report,
    minimum_period,
)
from repro.netlist import Network
from repro.switchlevel import Logic


def build_pipeline(tech):
    """in -> [phi1 latch] -> xor stage -> [phi2 latch] -> inverter -> q"""
    net = Network(tech, name="pipeline")
    gates = Gates(net)
    gates.pass_nmos("phi1", "din", "l1")
    gates.xor("l1", "ctl", "logic")
    gates.pass_nmos("phi2", "logic", "l2")
    gates.inverter("l2", "q")
    net.mark_input("din", "ctl", "phi1", "phi2")
    return net


def main() -> None:
    print("characterizing cmos3 ...")
    tech = characterize_technology(CMOS3)
    net = build_pipeline(tech)
    print(net.summary(), "\n")

    schedule = ClockSchedule.two_phase(period=20e-9, separation=1e-9,
                                       clock_slope=0.5e-9)
    data = {
        # Data launched at the start of phi1; control is quasi-static.
        "din": InputSpec(arrival_rise=0.0, arrival_fall=0.0, slope=0.5e-9),
        "ctl": InputSpec(arrival_rise=None, arrival_fall=None),
    }
    clocks = {"phi1": "phi1", "phi2": "phi2"}

    clocked = analyze_clocked(net, data, clocks, schedule)
    print(format_setup_report(clocked))

    print("\nsearching the minimum period ...")
    fastest = minimum_period(net, data, clocks, schedule)
    print(f"minimum passing period: {fastest * 1e9:.2f} ns "
          f"({1e-9 / fastest * 1000:.0f} MHz)")

    print("\ncharge-sharing scan (clocks low, latches holding):")
    states = {"phi1": Logic.ZERO, "phi2": Logic.ZERO}
    hazards = find_charge_sharing_hazards(net, states, threshold=0.10)
    print(format_hazard_report(hazards))


if __name__ == "__main__":
    main()
