#!/usr/bin/env python
"""The switch-level substrate on its own: simulate a dynamic datapath.

Exercises the ternary, strength-based switch-level simulator the way
esim/MOSSIM were used in the paper's era: a precharged bus plus a two-phase
dynamic shift register, stepped through clock phases, with charge storage
and X propagation on display.

Run:  python examples/switch_level_sim.py
"""

from repro import NMOS4
from repro.circuits import precharged_bus, shift_register
from repro.switchlevel import Logic, SwitchSimulator


def show(sim: SwitchSimulator, nodes) -> str:
    return "  ".join(f"{n}={sim.value(n)}" for n in nodes)


def main() -> None:
    print("== precharged bus (nMOS) " + "=" * 40)
    bus = precharged_bus(NMOS4, drivers=2)
    sim = SwitchSimulator(bus)
    watch = ["bus"]

    print("initial (everything unknown):   ", show(sim, watch))

    sim.run(phi=1, d0=0, en0=0, d1=0, en1=0)
    print("precharge phase (phi=1):        ", show(sim, watch))

    sim.run(phi=0)
    print("hold phase — stored charge:     ", show(sim, watch))

    sim.run(d0=1, en0=1)
    print("driver 0 discharges the bus:    ", show(sim, watch))

    sim.run(en0=0, phi=1)
    print("precharged again:               ", show(sim, watch))

    print()
    print("== two-phase dynamic shift register " + "=" * 29)
    reg = shift_register(NMOS4, stages=3)
    sim = SwitchSimulator(reg)
    taps = ["q1", "q2", "q3"]

    def clock_in(bit: int) -> None:
        sim.run(din=bit, phi1=1, phi2=0)
        sim.run(phi1=0, phi2=1)
        sim.run(phi2=0)

    print("initial:", show(sim, taps))
    for i, bit in enumerate([1, 0, 1, 1]):
        clock_in(bit)
        print(f"after shifting in {bit}:", show(sim, taps))

    print("\nnote the X values washing out of the register as real data")
    print("shifts in — exactly the unknown-state semantics of MOSSIM.")

    print()
    print("== charge retention and X " + "=" * 39)
    sim = SwitchSimulator(reg)
    sim.run(din=1, phi1=1, phi2=0)   # load through phase 1
    sim.run(phi1=0, phi2=0)          # both clocks off: isolated charge
    sim.run(din=0)                   # changing din must not leak through
    print("q-internal holds charge with clocks off:",
          show(sim, ["qi1"]))
    assert sim.value("qi1") is not Logic.X


if __name__ == "__main__":
    main()
