#!/usr/bin/env python
"""Crystal on a datapath: critical paths of a ripple-carry adder.

Demonstrates the workflow the paper built Crystal for: take a full
transistor-level design (an 8-bit ripple-carry adder, ~350 devices), run
switch-level timing analysis, and read off the ranked critical paths —
something circuit simulation of the era could not do at chip scale.

Run:  python examples/timing_report_adder.py [bits]
"""

import sys
import time

from repro import CMOS3, SlopeModel, Transition, characterize_technology
from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.timing import (
    TimingAnalyzer,
    format_critical_path,
    format_worst_paths,
)


def main() -> None:
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print("characterizing cmos3 ...")
    tech = characterize_technology(CMOS3)

    adder = ripple_carry_adder(tech, bits)
    print(f"{adder.summary()}\n")

    analyzer = TimingAnalyzer(adder, model=SlopeModel())
    inputs = {name: 0.0 for name in adder_input_names(bits)}

    started = time.perf_counter()
    result = analyzer.analyze(inputs)
    elapsed = time.perf_counter() - started
    print(f"timing analysis of {len(adder.transistors)} transistors took "
          f"{elapsed * 1e3:.0f} ms\n")

    outputs = [f"s{i}" for i in range(bits)] + ["cout"]
    print(format_worst_paths(result, nodes=outputs, count=5))
    print()

    event, _ = result.worst(outputs)
    print(format_critical_path(result, event.node, event.transition))

    # The carry chain in numbers: arrival of each carry bit.
    print("\ncarry-chain arrivals:")
    for bit in range(1, bits):
        node = f"c{bit}"
        arrival = max(
            (result.arrival(node, t).time for t in Transition
             if result.has_arrival(node, t)),
            default=None)
        if arrival is not None:
            print(f"  c{bit:<3d} {arrival * 1e9:7.3f} ns")


if __name__ == "__main__":
    main()
