#!/usr/bin/env python
"""Model shoot-out on the paper's test circuits.

Reproduces the heart of the paper's evaluation interactively: runs the
nMOS or CMOS scenario suite (analog reference + all three delay models)
and prints the comparison table and error summary.

Run:  python examples/compare_models.py [nmos|cmos]
"""

import sys

from repro import NMOS4, CMOS3, characterize_technology
from repro.bench import (
    cmos_scenarios,
    format_comparison_table,
    format_error_summary,
    nmos_scenarios,
    run_suite,
    summarize_errors,
)


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "cmos"
    if which not in ("nmos", "cmos"):
        raise SystemExit("usage: compare_models.py [nmos|cmos]")

    if which == "nmos":
        print("characterizing nmos4 (a minute or so the first time) ...")
        tech = characterize_technology(NMOS4)
        scenarios = nmos_scenarios(tech)
        title = "nMOS test circuits (paper Table 1 reconstruction)"
    else:
        print("characterizing cmos3 (a minute or so the first time) ...")
        tech = characterize_technology(CMOS3)
        scenarios = cmos_scenarios(tech)
        title = "CMOS test circuits (paper Table 2 reconstruction)"

    print(f"running {len(scenarios)} scenarios "
          "(each = one transient + three analyses) ...\n")
    rows = run_suite(scenarios)
    print(format_comparison_table(rows, title))
    print()
    print(format_error_summary(summarize_errors(rows),
                               "error summary (vs analog reference)"))
    print("\nreading the table: the slope model should sit within ~10% of "
          "the\nreference almost everywhere; the constant-resistance models "
          "miss by\ntens of percent — worst on slope-dominated chains "
          "(underestimates) and\non pass chains (lumped RC approaches 2x "
          "pessimism).")


if __name__ == "__main__":
    main()
