#!/usr/bin/env python
"""Regenerate the slope-model tables for a technology.

Shows the characterization methodology of the paper end to end: reference
fixtures are simulated with the analog engine across a logarithmic grid of
slope ratios, static effective resistances are fitted from step inputs,
and the resulting tables are printed and (optionally) written to JSON so
they can be reloaded without re-running the fits.

Run:  python examples/characterize_tech.py [nmos|cmos] [output.json]
"""

import json
import sys

from repro import NMOS4, CMOS3
from repro.core.models import characterize_technology
from repro.core.models.characterize import fixtures_for, table_summary
from repro.tech import SlopeTableSet


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "cmos"
    output = sys.argv[2] if len(sys.argv) > 2 else None
    base = NMOS4 if which == "nmos" else CMOS3

    print(f"technology: {base.name}")
    print(base.describe())
    print(f"\nfixtures: "
          + ", ".join(f"{f.kind.name}/{f.transition.value}"
                      for f in fixtures_for(base)))

    print("\nfitting (one transient per grid point per fixture) ...")
    fitted = characterize_technology(base)

    print()
    print(table_summary(fitted))

    print("\nfitted static resistances (square device):")
    for (kind, transition), entry in sorted(
            fitted.static_resistance.items(),
            key=lambda kv: (kv[0][0].value, kv[0][1].value)):
        print(f"  {kind.name:9s} {transition.value:4s} "
              f"{entry.r_square / 1e3:9.2f} kOhm/sq")

    if output:
        with open(output, "w") as handle:
            json.dump(fitted.slope_tables.to_dict(), handle, indent=2)
        print(f"\nslope tables written to {output}")
        # Demonstrate the reload path.
        with open(output) as handle:
            reloaded = SlopeTableSet.from_dict(json.load(handle))
        print(f"reload check: {len(reloaded.keys())} tables, "
              f"source {reloaded.source!r}")


if __name__ == "__main__":
    main()
