#!/usr/bin/env python
"""Quickstart: time a small circuit three ways.

Builds a 4-stage CMOS inverter chain, runs the three delay models of the
paper through the Crystal-style analyzer, and cross-checks the slope model
against the analog reference simulator — the whole reproduction in forty
lines.

Run:  python examples/quickstart.py
"""

from repro import (
    CMOS3,
    LumpedRCModel,
    RCTreeModel,
    SlopeModel,
    Transition,
    analyze,
    characterize_technology,
    delay_between,
    inverter_chain,
    simulate,
)
from repro.analog import sources
from repro.core.timing import InputSpec, format_critical_path


def main() -> None:
    # 1. Characterize the technology (fits slope tables against the
    #    built-in analog simulator; cached, so this is a one-time cost).
    print("characterizing cmos3 ...")
    tech = characterize_technology(CMOS3)

    # 2. Build a circuit.
    chain = inverter_chain(tech, stages=4)
    print(chain.summary())

    # 3. Static timing with each delay model.
    input_slope = 0.5e-9
    spec = {"in": InputSpec(arrival_rise=0.0, arrival_fall=None,
                            slope=input_slope)}
    print("\nmodel estimates for out(rise):")
    for model in (LumpedRCModel(), RCTreeModel(), SlopeModel()):
        result = analyze(chain, spec, model=model)
        arrival = result.arrival("out", Transition.RISE)
        print(f"  {model.name:10s} {arrival.time * 1e9:7.3f} ns")

    # 4. The analog reference (the stand-in for SPICE).
    analog = simulate(
        chain,
        {"in": sources.edge(tech.vdd, rising=True, at=2e-9,
                            transition_time=input_slope)},
        t_stop=30e-9,
    )
    reference = delay_between(analog.waveform("in"), analog.waveform("out"),
                              tech.vdd, Transition.RISE, Transition.RISE)
    print(f"  {'reference':10s} {reference * 1e9:7.3f} ns")

    # 5. A Crystal-style critical-path report.
    print()
    result = analyze(chain, spec, model=SlopeModel())
    print(format_critical_path(result, "out", Transition.RISE))


if __name__ == "__main__":
    main()
